"""Telemetry threaded through the service layers.

Covers the observer wiring the registry unit tests cannot: the
:class:`InstrumentedStore` proxy (timing without touching store
classes), the netstore's ``/metrics`` and ``/telemetry`` side-channels,
worker claim/outcome/heartbeat counters with error routing through the
event log, and the per-job timeline blob that rides in
``JobResult.extras``.
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro import obs
from repro.obs import (
    InstrumentedStore,
    instrument_store,
    store_backend_label,
    timeline_from_history,
    timeline_rows,
    timeline_summary,
)
from repro.obs.timeline import MAX_TIMELINE_POINTS
from repro.service import (
    JobRunner,
    JobStore,
    JobStoreServer,
    ProtectionJob,
    RemoteJobStore,
    Worker,
)
from repro.service.worker import ClaimHeartbeat, release_quietly

TOKEN = "s3cret"


@pytest.fixture(autouse=True)
def telemetry_on():
    """Enabled, empty registry and a capturable event stream per test."""
    registry = obs.enable()
    registry.reset()
    stream = io.StringIO()
    obs.configure_events(stream)
    yield stream
    obs.disable()
    registry.reset()
    obs.configure_events(None)


def events(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def counter_value(name: str, **labels: str) -> float:
    for entry in obs.get_registry().snapshot()["counters"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry["value"]
    return 0.0


class TestInstrumentedStore:
    def test_timed_op_records_latency_with_backend_label(self, tmp_path):
        store = instrument_store(JobStore(tmp_path / "state"))
        store.submit(ProtectionJob(dataset="flare", generations=2))
        store.records()
        histograms = {
            (h["name"], h["labels"]["op"]): h
            for h in obs.get_registry().snapshot()["histograms"]
            if h["name"] == "repro_store_op_seconds"
        }
        for op in ("submit", "records"):
            hist = histograms[("repro_store_op_seconds", op)]
            assert hist["labels"]["backend"] == "file"
            assert hist["count"] == 1

    def test_non_protocol_attributes_forward_untouched(self, tmp_path):
        raw = JobStore(tmp_path / "state")
        store = instrument_store(raw)
        assert store.cache_path == raw.cache_path
        assert store.checkpoints_dir == raw.checkpoints_dir
        assert store.wrapped is raw

    def test_errors_counted_and_propagated(self, tmp_path):
        class Exploding:
            def records(self):
                raise OSError("disk gone")

        store = instrument_store(Exploding(), backend="file")
        with pytest.raises(OSError, match="disk gone"):
            store.records()
        assert counter_value("repro_store_op_errors_total",
                             op="records", backend="file") == 1

    def test_instrument_is_idempotent(self, tmp_path):
        store = instrument_store(JobStore(tmp_path / "state"))
        assert instrument_store(store) is store
        assert isinstance(store, InstrumentedStore)

    def test_results_pass_through_unchanged(self, tmp_path):
        raw = JobStore(tmp_path / "a")
        wrapped = instrument_store(JobStore(tmp_path / "b"))
        job = ProtectionJob(dataset="flare", generations=2)
        mine = wrapped.submit(job).to_dict()
        theirs = raw.submit(job).to_dict()
        mine.pop("submitted_at"), theirs.pop("submitted_at")
        assert mine == theirs

    def test_disabled_registry_records_nothing(self, tmp_path):
        obs.disable()
        store = instrument_store(JobStore(tmp_path / "state"))
        store.records()
        assert obs.get_registry().snapshot()["histograms"] == []

    def test_backend_labels(self, tmp_path):
        assert store_backend_label(JobStore(tmp_path / "state")) == "file"
        assert store_backend_label(
            SimpleNamespace(base_url="http://x:1", spec="")) == "remote"
        assert store_backend_label(
            SimpleNamespace(spec="sqlite:/tmp/db")) == "sqlite"


def fake_history(n: int) -> list[SimpleNamespace]:
    return [
        SimpleNamespace(
            generation=i + 1,
            operator="mutation" if i % 2 else "crossover",
            min_score=30.0 - i * 0.01,
            mean_score=35.0 - i * 0.01,
            evaluations=2,
            fitness_seconds=0.004,
            other_seconds=0.001,
            accepted=bool(i % 3),
        )
        for i in range(n)
    ]


class TestTimeline:
    def test_blob_shape_and_rows(self):
        timeline = timeline_from_history(fake_history(6))
        assert timeline["version"] == 1
        assert timeline["stride"] == 1
        assert timeline["generation"] == [1, 2, 3, 4, 5, 6]
        assert timeline["operator"] == "cmcmcm"
        rows = timeline_rows(timeline)
        assert len(rows) == 6
        assert rows[0][0] == "1" and rows[0][1] == "crossover"
        assert rows[1][1] == "mutation"

    def test_long_runs_stride_sampled_keeping_last(self):
        n = MAX_TIMELINE_POINTS * 3 + 7
        timeline = timeline_from_history(fake_history(n))
        assert timeline["stride"] == 4
        assert len(timeline["generation"]) <= MAX_TIMELINE_POINTS + 1
        assert timeline["generation"][-1] == n

    def test_rows_bucketed_to_max(self):
        timeline = timeline_from_history(fake_history(100))
        rows = timeline_rows(timeline, max_rows=10)
        assert len(rows) == 10
        assert rows[0][0] == "1-10"
        assert rows[0][4] == 20  # evaluations summed over the bucket
        assert rows[0][7] == "6/10"  # accepted count over bucket size

    def test_summary(self):
        summary = timeline_summary(timeline_from_history(fake_history(6)))
        assert summary["generations"] == 6
        assert summary["traced"] == 6
        assert summary["evaluations"] == 12
        assert summary["final_best"] == pytest.approx(30.0 - 5 * 0.01)

    def test_empty_history(self):
        timeline = timeline_from_history([])
        assert timeline_rows(timeline) == []
        assert timeline_summary(timeline)["generations"] == 0

    def test_runner_persists_timeline_in_extras(self, tmp_path):
        job = ProtectionJob(dataset="flare", generations=3, seed=5)
        (result,) = JobRunner().run([job])
        timeline = result.extras["timeline"]
        assert timeline["generation"] == [1, 2, 3]
        assert len(timeline["best"]) == 3
        json.dumps(timeline)  # store-safe


class TestMetricsEndpoint:
    @pytest.fixture
    def server(self, tmp_path):
        store = instrument_store(JobStore(tmp_path / "state"), backend="file")
        with JobStoreServer(store, token=TOKEN) as live:
            yield live

    def fetch(self, server, token=TOKEN):
        request = urllib.request.Request(f"{server.url}/metrics")
        if token:
            request.add_header("Authorization", f"Bearer {token}")
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, dict(response.headers), response.read().decode()

    def test_metrics_requires_token(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self.fetch(server, token=None)
        assert err.value.code == 401

    def test_metrics_exposition_and_headers(self, server, tmp_path):
        client = RemoteJobStore(server.url, token=TOKEN,
                                spool=tmp_path / "spool", retries=1)
        client.submit(ProtectionJob(dataset="flare", generations=2))
        status, headers, body = self.fetch(server)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert float(headers["X-Repro-Duration"]) >= 0
        assert headers["X-Repro-Cache-Status"] == "miss"
        assert "# TYPE repro_rpc_seconds histogram" in body
        assert 'repro_rpc_seconds_count{method="submit",status="200"}' in body
        assert 'repro_store_op_seconds_count{backend="file",op="submit"}' in body

    def test_metrics_render_cached_within_ttl(self, server):
        # An empty exposition is never cached; record one series first.
        obs.get_registry().inc("repro_events_total", event="test")
        _, headers, first = self.fetch(server)
        assert headers["X-Repro-Cache-Status"] == "miss"
        _, headers, second = self.fetch(server)
        assert headers["X-Repro-Cache-Status"] == "hit"
        assert second == first

    def test_telemetry_push_rendered_with_source_label(self, server, tmp_path):
        client = RemoteJobStore(server.url, token=TOKEN,
                                spool=tmp_path / "spool", retries=1)
        worker_registry = obs.MetricsRegistry()
        worker_registry.inc("repro_worker_jobs_total", outcome="completed")
        client.push_telemetry("worker-a", worker_registry.snapshot())
        server._httpd.metrics_cache = (0.0, "")  # skip the render TTL
        _, _, body = self.fetch(server)
        assert ('repro_worker_jobs_total{outcome="completed",'
                'source="worker-a"} 1') in body

    def test_telemetry_rejects_garbage(self, server):
        request = urllib.request.Request(
            f"{server.url}/telemetry",
            data=json.dumps({"source": "", "snapshot": []}).encode(),
            headers={"Authorization": f"Bearer {TOKEN}",
                     "Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400

    def test_rpc_error_status_labelled(self, server, tmp_path):
        client = RemoteJobStore(server.url, token=TOKEN,
                                spool=tmp_path / "spool", retries=1)
        with pytest.raises(Exception):
            client.get("no-such-job")
        status, _, body = self.fetch(server)
        # Missing jobs surface as a 400-mapped ServiceError on the wire.
        assert 'repro_rpc_seconds_count{method="get",status="400"} 1' in body


class TestWorkerTelemetry:
    def test_claims_and_outcomes_counted(self, tmp_path, telemetry_on):
        store = JobStore(tmp_path / "state")
        store.submit(ProtectionJob(dataset="flare", generations=2, seed=3))
        worker = Worker(store, worker_id="w-test")
        outcomes = worker.run_once()
        assert len(outcomes) == 1 and outcomes[0].ok
        assert counter_value("repro_worker_claims_total", result="won") == 1
        assert counter_value("repro_worker_jobs_total", outcome="completed") == 1
        names = [e["event"] for e in events(telemetry_on)]
        assert "job_completed" in names
        assert "generation" in names

    def test_heartbeat_failure_counted_and_emitted(self, telemetry_on):
        class DeadStore:
            def heartbeat(self, job_id, owner):
                raise OSError("store unreachable")

        beat = ClaimHeartbeat(DeadStore(), ["j1"], "w-test", interval=30.0)
        beat.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:  # first beat fires immediately
            if counter_value("repro_heartbeat_total", result="error"):
                break
            time.sleep(0.01)
        beat.stop()
        assert counter_value("repro_heartbeat_total", result="error") >= 1
        (event,) = [e for e in events(telemetry_on)
                    if e["event"] == "heartbeat_error"][:1]
        assert event["job_id"] == "j1"
        assert "store unreachable" in event["error"]

    def test_lost_heartbeat_emitted(self, tmp_path, telemetry_on):
        store = JobStore(tmp_path / "state")
        store.submit(ProtectionJob(dataset="flare", generations=2))
        beat = ClaimHeartbeat(store, ["never-claimed"], "w-test", interval=30.0)
        beat.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if counter_value("repro_heartbeat_total", result="lost"):
                break
            time.sleep(0.01)
        beat.stop()
        assert counter_value("repro_heartbeat_total", result="lost") >= 1
        assert any(e["event"] == "heartbeat_lost" for e in events(telemetry_on))

    def test_failed_release_emitted_not_raised(self, telemetry_on):
        class DeadStore:
            def release(self, job_id, owner):
                raise OSError("gone")

        release_quietly(DeadStore(), ["j1", "j2"], "w-test")
        errors = [e for e in events(telemetry_on) if e["event"] == "release_error"]
        assert [e["job_id"] for e in errors] == ["j1", "j2"]
        assert counter_value("repro_errors_total", event="release_error") == 2

    def test_telemetry_push_failure_counted_not_raised(self, tmp_path):
        store = JobStore(tmp_path / "state")
        store.push_telemetry = lambda source, snapshot: (_ for _ in ()).throw(
            OSError("no server")
        )
        worker = Worker(store, worker_id="w-test")
        worker._maybe_push_telemetry(force=True)
        assert counter_value("repro_errors_total",
                             event="telemetry_push_error") == 1

    def test_push_throttled_between_forces(self, tmp_path):
        pushes = []
        store = JobStore(tmp_path / "state")
        store.push_telemetry = lambda source, snapshot: pushes.append(source)
        worker = Worker(store, worker_id="w-test")
        worker._maybe_push_telemetry(force=True)
        worker._maybe_push_telemetry()  # inside min_interval: skipped
        worker._maybe_push_telemetry(force=True)
        assert pushes == ["w-test", "w-test"]
