"""Unit tests for the ProtectionMethod base class, registry and pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDataset
from repro.exceptions import ProtectionError
from repro.methods import (
    Pram,
    ProtectionMethod,
    ProtectionPipeline,
    RankSwapping,
    TopCoding,
    registry,
)


class _BadShapeMethod(ProtectionMethod):
    method_name = "bad_shape"

    def protect_column(self, dataset, column, rng):
        return np.zeros(3, dtype=np.int64)


class _OutOfDomainMethod(ProtectionMethod):
    method_name = "out_of_domain"

    def protect_column(self, dataset, column, rng):
        return np.full(dataset.n_records, 999, dtype=np.int64)


class TestProtectInterface:
    def test_empty_attributes_rejected(self, adult):
        with pytest.raises(ProtectionError):
            Pram(theta=0.1).protect(adult, [])

    def test_unknown_attribute_rejected(self, adult):
        with pytest.raises(Exception):
            Pram(theta=0.1).protect(adult, ["NOPE"])

    def test_bad_shape_from_subclass_caught(self, adult):
        with pytest.raises(ProtectionError, match="shape"):
            _BadShapeMethod().protect(adult, ["EDUCATION"])

    def test_out_of_domain_from_subclass_caught(self, adult):
        with pytest.raises(Exception):
            _OutOfDomainMethod().protect(adult, ["EDUCATION"])

    def test_protect_never_mutates_original(self, adult):
        before = adult.codes.copy()
        Pram(theta=0.4).protect(adult, ["EDUCATION"], seed=0)
        assert np.array_equal(adult.codes, before)

    def test_custom_name(self, adult):
        masked = Pram(theta=0.1).protect(adult, ["EDUCATION"], seed=0, name="custom")
        assert masked.name == "custom"

    def test_default_name_mentions_method(self, adult):
        masked = Pram(theta=0.1).protect(adult, ["EDUCATION"], seed=0)
        assert "pram" in masked.name

    def test_result_is_valid_dataset(self, adult):
        masked = Pram(theta=0.3).protect(adult, ["EDUCATION"], seed=0)
        assert isinstance(masked, CategoricalDataset)
        adult.require_compatible(masked)


class TestRegistry:
    def test_known_methods_registered(self):
        names = registry.names()
        for expected in (
            "microaggregation",
            "rank_swapping",
            "pram",
            "invariant_pram",
            "top_coding",
            "bottom_coding",
            "global_recoding",
            "local_suppression",
        ):
            assert expected in names

    def test_create_by_name(self):
        method = registry.create("pram", theta=0.25)
        assert isinstance(method, Pram)
        assert method.theta == 0.25

    def test_create_unknown(self):
        with pytest.raises(ProtectionError, match="unknown method"):
            registry.create("quantum_foam")

    def test_double_registration_rejected(self):
        with pytest.raises(ProtectionError, match="already registered"):
            registry.register(Pram)


class TestPipeline:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ProtectionError):
            ProtectionPipeline([])

    def test_stages_apply_in_order(self, adult):
        attrs = ["EDUCATION"]
        pipeline = ProtectionPipeline([TopCoding(fraction=0.3), RankSwapping(p=5)])
        masked = pipeline.protect(adult, attrs, seed=0)
        # Top coding caps the maximum code; rank swapping permutes within
        # the capped values, so the cap must still hold afterwards.
        capped = TopCoding(fraction=0.3).protect(adult, attrs)
        assert masked.column("EDUCATION").max() <= capped.column("EDUCATION").max()

    def test_pipeline_describe_joins_stages(self):
        pipeline = ProtectionPipeline([TopCoding(fraction=0.2), Pram(theta=0.1)])
        assert "topcode" in pipeline.describe() and "pram" in pipeline.describe()

    def test_pipeline_deterministic(self, adult):
        pipeline = ProtectionPipeline([Pram(theta=0.2), RankSwapping(p=3)])
        a = pipeline.protect(adult, ["EDUCATION"], seed=11)
        b = pipeline.protect(adult, ["EDUCATION"], seed=11)
        assert a.equals(b)

    def test_pipeline_differs_from_single_stage(self, adult):
        single = Pram(theta=0.2).protect(adult, ["EDUCATION"], seed=5)
        double = ProtectionPipeline([Pram(theta=0.2), Pram(theta=0.2)]).protect(
            adult, ["EDUCATION"], seed=5
        )
        assert not single.equals(double)
