"""The sharded control plane beyond the store contract.

``tests/test_store_contract.py`` already proves a ``ShardedJobStore``
is indistinguishable from a single store (the ``shard-sqlite`` and
``shard-mixed`` harness params).  This file covers what the contract
cannot see: placement determinism, the health circuit, work-stealing
order, the kill-one-shard exactly-once guarantee, the 1-shard
pass-through pin, and the ``shard:`` spec grammar.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro import obs
from repro.exceptions import ServiceError, StoreUnavailableError
from repro.service import (
    JobStore,
    ProtectionJob,
    ShardedJobStore,
    SqliteJobStore,
    migrate_store,
    parse_shard_spec,
    store_from_spec,
)
from repro.service.job import JobResult


def make_result(job: ProtectionJob) -> JobResult:
    return JobResult(
        job_id=job.job_id, dataset=job.dataset, seed=job.seed,
        generations=job.generations, best_score=0.5,
        best_information_loss=0.2, best_disclosure_risk=0.3,
        final_scores=(0.5, 0.6), mean_improvement_percent=1.0,
        fresh_evaluations=3, memo_hits=0, persistent_hits=0,
        wall_seconds=0.1,
    )


class FlakyStore:
    """Delegates to a real store until killed; then every call raises
    :class:`StoreUnavailableError` — a shard's process going dark, as
    seen from a client."""

    def __init__(self, store):
        self._store = store
        self.down = False
        self.calls = 0

    def kill(self) -> None:
        self.down = True

    def revive(self) -> None:
        self.down = False

    def __getattr__(self, name):
        value = getattr(self._store, name)
        if not callable(value):
            return value

        def guarded(*args, **kwargs):
            if self.down:
                raise StoreUnavailableError(f"shard down ({name})")
            self.calls += 1
            return value(*args, **kwargs)

        return guarded


def two_shards(tmp_path, cooldown=30.0, flaky=False):
    children = [SqliteJobStore(tmp_path / "a.sqlite"),
                SqliteJobStore(tmp_path / "b.sqlite")]
    if flaky:
        children = [FlakyStore(child) for child in children]
    store = ShardedJobStore(children, names=["a", "b"],
                            root=tmp_path / "spool", cooldown=cooldown)
    return store, children


def jobs(n, **overrides):
    return [ProtectionJob(dataset="flare", generations=2, seed=seed,
                          **overrides)
            for seed in range(n)]


class TestPlacement:
    # Computed once from sha256 rendezvous over names ("a", "b") and
    # ("a", "b", "c"): the pinned mapping is what deployed fleets
    # already used to place their records — changing the hash strands
    # every one of them on a now-wrong home shard, so a diff here is a
    # breaking change, not a refactor.
    PINNED_2 = {"j0": "a", "j1": "b", "j2": "b", "j3": "a", "j4": "a",
                "j5": "b", "j6": "b", "j7": "a", "j8": "b", "j9": "b"}
    PINNED_3 = {"j0": "a", "j1": "b", "j2": "b", "j3": "c", "j4": "a",
                "j5": "c", "j6": "c", "j7": "a", "j8": "b", "j9": "c"}

    def test_rendezvous_mapping_is_pinned(self, tmp_path):
        store, _ = two_shards(tmp_path)
        assert {job_id: store.shard_name_for(job_id)
                for job_id in self.PINNED_2} == self.PINNED_2
        three = ShardedJobStore(
            [SqliteJobStore(tmp_path / f"{n}3.sqlite") for n in "abc"],
            names=["a", "b", "c"], root=tmp_path / "spool3")
        assert {job_id: three.shard_name_for(job_id)
                for job_id in self.PINNED_3} == self.PINNED_3

    def test_placement_survives_shard_list_reordering(self, tmp_path):
        forward, _ = two_shards(tmp_path / "fwd")
        reversed_store = ShardedJobStore(
            [SqliteJobStore(tmp_path / "rev" / "b.sqlite"),
             SqliteJobStore(tmp_path / "rev" / "a.sqlite")],
            names=["b", "a"], root=tmp_path / "rev" / "spool")
        for job_id in (f"job-{i}" for i in range(50)):
            assert (forward.shard_name_for(job_id)
                    == reversed_store.shard_name_for(job_id))

    def test_adding_a_shard_only_moves_keys_to_the_new_shard(self, tmp_path):
        # The rendezvous property modulo hashing lacks: growing the
        # fleet re-homes only the keys the new shard now wins.
        assert all(
            self.PINNED_3[job_id] in (home, "c")
            for job_id, home in self.PINNED_2.items()
        )

    def test_record_claim_and_checkpoint_live_on_one_shard(self, tmp_path):
        store, children = two_shards(tmp_path)
        job = jobs(1)[0]
        store.submit(job)
        assert store.claim(job.job_id, owner="w1")
        store.put_checkpoint(job.job_id, {"gen": 3}, owner="w1")
        populated = [
            child for child in children
            if child.get(job.job_id, missing_ok=True) is not None
        ]
        assert len(populated) == 1
        (child,) = populated
        assert child.claim_info(job.job_id)["owner"] == "w1"
        assert child.get_checkpoint(job.job_id) == {"gen": 3}
        assert store.shard_for(job.job_id) is child

    def test_contending_clients_agree_on_the_claim_shard(self, tmp_path):
        # Two independent clients of the same fleet: exactly one wins a
        # claim on an id with no record, because both route it to the
        # same rendezvous home.
        first, _ = two_shards(tmp_path)
        second = ShardedJobStore(
            [SqliteJobStore(tmp_path / "a.sqlite"),
             SqliteJobStore(tmp_path / "b.sqlite")],
            names=["a", "b"], root=tmp_path / "spool2")
        assert first.claim("bare-id", owner="w1")
        assert not second.claim("bare-id", owner="w2")


class TestFanOut:
    def test_reads_merge_all_shards_oldest_first(self, tmp_path):
        store, children = two_shards(tmp_path)
        submitted = jobs(8)
        for job in submitted:
            store.submit(job)
        per_child = [len(child.records()) for child in children]
        assert all(count > 0 for count in per_child)
        assert sum(per_child) == 8
        listed = store.records()
        assert {r.job_id for r in listed} == {j.job_id for j in submitted}
        stamps = [(r.submitted_at, r.job_id) for r in listed]
        assert stamps == sorted(stamps)
        assert {r.job_id for r in store.queued()} == {j.job_id for j in submitted}

    def test_claims_carry_their_shard_name(self, tmp_path):
        store, _ = two_shards(tmp_path)
        for job in jobs(6):
            store.submit(job)
            store.claim(job.job_id, owner="w1")
        claims = store.claims()
        assert len(claims) == 6
        names = {info["shard"] for info in claims.values()}
        assert names == {"a", "b"}
        for job_id, info in claims.items():
            assert info["shard"] == store.shard_name_for(job_id)

    def test_status_is_one_bulk_read_per_shard(self, tmp_path):
        store, children = two_shards(tmp_path, flaky=True)
        for job in jobs(10):
            store.submit(job)
        for child in children:
            child.calls = 0
        store.claims()
        # One claims() call per shard — not one per job.
        assert all(child.calls == 1 for child in children)


class TestHealthCircuit:
    def test_unavailable_shard_is_skipped_and_counted(self, tmp_path):
        registry = obs.enable()
        registry.reset()
        try:
            store, children = two_shards(tmp_path, flaky=True)
            for job in jobs(8):
                store.submit(job)
            on_a = [r.job_id for r in children[0].records()]
            children[1].kill()
            listed = store.records()  # first call eats the error
            listed = store.records()  # circuit now open: no child call
            assert {r.job_id for r in listed} == set(on_a)
            unavailable = [
                c for c in registry.snapshot()["counters"]
                if c["name"] == "repro_shard_unavailable_total"
            ]
            assert unavailable and unavailable[0]["labels"]["shard"] == "b"
        finally:
            obs.disable()
            registry.reset()

    def test_circuit_closes_after_cooldown(self, tmp_path):
        store, children = two_shards(tmp_path, cooldown=0.05, flaky=True)
        for job in jobs(8):
            store.submit(job)
        children[1].kill()
        store.records()
        children[1].revive()
        time.sleep(0.06)
        assert len(store.records()) == 8

    def test_submit_routes_around_a_dead_home_shard(self, tmp_path):
        store, children = two_shards(tmp_path, flaky=True)
        job = next(j for j in jobs(20)
                   if store.shard_name_for(j.job_id) == "b")
        children[1].kill()
        store.records()  # open the circuit
        store.submit(job)
        assert children[0]._store.get(job.job_id, missing_ok=True) is not None

    def test_job_on_dead_shard_fails_fast_not_silently_absent(self, tmp_path):
        # A job whose shard is unreachable must raise, not report the
        # job missing — "absent" would let a caller requeue or resubmit
        # a job that is alive on the dark shard.
        store, children = two_shards(tmp_path, flaky=True)
        job = jobs(1)[0]
        store.submit(job)
        fresh = ShardedJobStore(children, names=["a", "b"],
                                root=tmp_path / "spool2")
        holder = store.shard_name_for(job.job_id)
        children[0 if holder == "a" else 1].kill()
        with pytest.raises(StoreUnavailableError):
            fresh.get(job.job_id)

    def test_all_shards_down_raises_on_submit(self, tmp_path):
        store, children = two_shards(tmp_path, flaky=True)
        for child in children:
            child.kill()
        with pytest.raises(StoreUnavailableError):
            store.submit(jobs(1)[0])


class TestStealing:
    def test_home_shard_drains_before_stealing(self, tmp_path):
        registry = obs.enable()
        registry.reset()
        try:
            store, children = two_shards(tmp_path)
            for job in jobs(10):
                store.submit(job)
            owner = "worker-1"
            home = store._rendezvous_order(owner)[0].name
            home_child = children[0 if home == "a" else 1]
            home_ids = {r.job_id for r in home_child.records()}
            batch = store.steal_batch(owner=owner, limit=len(home_ids))
            assert {r.job_id for r in batch} == home_ids
            # Draining your own home is not stealing.
            assert not any(
                c["name"] == "repro_shard_steals_total"
                for c in registry.snapshot()["counters"]
            )
            rest = store.steal_batch(owner=owner, limit=0)
            assert {r.job_id for r in rest} == {
                r.job_id for r in children[0 if home == "b" else 1].records()
            }
            steals = [c for c in registry.snapshot()["counters"]
                      if c["name"] == "repro_shard_steals_total"]
            assert steals and steals[0]["value"] == len(rest)
            assert steals[0]["labels"]["shard"] != home
        finally:
            obs.disable()
            registry.reset()

    def test_steals_most_backlogged_shard_first(self, tmp_path):
        children = [SqliteJobStore(tmp_path / f"{n}.sqlite") for n in "abc"]
        store = ShardedJobStore(children, names=["a", "b", "c"],
                                root=tmp_path / "spool")
        owner = "worker-1"
        order = [s.name for s in store._rendezvous_order(owner)]
        home, light, heavy = order[0], order[1], order[2]
        by_name = dict(zip("abc", children))
        for i, job in enumerate(jobs(9)):
            target = heavy if i < 8 else light
            by_name[target].submit(job)
        batch = store.steal_batch(owner=owner, limit=1)
        assert len(batch) == 1
        assert by_name[heavy].claim_info(batch[0].job_id) is not None

    def test_stealing_skips_a_dead_shard(self, tmp_path):
        store, children = two_shards(tmp_path, flaky=True)
        for job in jobs(10):
            store.submit(job)
        children[1].kill()
        batch = store.steal_batch(owner="worker-1", limit=0)
        alive = {r.job_id for r in children[0]._store.records()}
        assert {r.job_id for r in batch} == alive

    def test_worker_uses_steal_batch_when_the_store_offers_it(self, tmp_path):
        from repro.service.worker import Worker

        store, _ = two_shards(tmp_path)
        calls = []
        original = store.steal_batch
        store.steal_batch = lambda owner="", limit=0: (
            calls.append(limit), original(owner=owner, limit=limit))[1]
        for job in jobs(2):
            store.submit(job)
        worker = Worker(store, use_cache=False, capacity=2)
        claimed = worker._claim_batch(2)
        assert calls == [2]
        assert len(claimed) == 2


def _drain(store, executed, done, lock, stop_when_empty=3):
    """One worker loop: steal, run, complete — dead shards tolerated."""
    empty = 0
    owner_name = threading.current_thread().name
    while empty < stop_when_empty:
        try:
            batch = store.steal_batch(owner=owner_name, limit=2)
        except StoreUnavailableError:
            batch = []
        if not batch:
            empty += 1
            time.sleep(0.005)
            continue
        empty = 0
        for record in batch:
            with lock:
                executed[record.job_id] = executed.get(record.job_id, 0) + 1
            try:
                store.mark_running(record)
                store.mark_completed(record, make_result(record.job))
                with lock:
                    done[record.job_id] = done.get(record.job_id, 0) + 1
                store.release(record.job_id, owner=owner_name)
            except StoreUnavailableError:
                continue  # the job's shard died under us; recovery reruns it


def _kill_one_shard_race(tmp_path, n_jobs, n_workers, n_shards):
    """The acceptance scenario: a shard dies mid-race; surviving shards
    keep claiming; the dead shard's recovered jobs complete exactly
    once (completion-exactly-once: an execution cut down by the outage
    before its completion landed may rerun — that is the crashed-worker
    contract — but no job ever *completes* twice and none is lost)."""
    names = [f"s{i}" for i in range(n_shards)]
    children = [FlakyStore(SqliteJobStore(tmp_path / f"{name}.sqlite"))
                for name in names]
    store = ShardedJobStore(children, names=names, root=tmp_path / "spool",
                            cooldown=30.0)
    submitted = jobs(n_jobs)
    for job in submitted:
        store.submit(job)
    victim = children[-1]
    survivors = [c for c in children if c is not victim]
    executed: dict[str, int] = {}
    done: dict[str, int] = {}
    lock = threading.Lock()
    workers = [
        threading.Thread(target=_drain, name=f"racer-{i}",
                         args=(store, executed, done, lock))
        for i in range(n_workers)
    ]
    for worker in workers:
        worker.start()
    time.sleep(0.05)
    victim.kill()  # mid-race: some of its jobs are claimed, some queued
    for worker in workers:
        worker.join()
    # Surviving shards drained completely while the victim was dark.
    for child in survivors:
        assert all(r.status == "completed" for r in child.records())
    # The victim returns; the existing stale-claim repair requeues its
    # strays (claims cut off mid-run and records stranded running).
    victim.revive()
    for shard in store._shards:
        shard.open_until = 0.0
        shard.failures = 0
    store.recover_stale_claims(0.0)
    finishers = [
        threading.Thread(target=_drain, name=f"finisher-{i}",
                         args=(store, executed, done, lock))
        for i in range(2)
    ]
    for worker in finishers:
        worker.start()
    for worker in finishers:
        worker.join()
    records = store.records()
    assert len(records) == n_jobs  # none lost
    assert all(r.status == "completed" for r in records)
    assert set(done) == {j.job_id for j in submitted}
    assert all(count == 1 for count in done.values())  # none completed twice


class TestKillOneShard:
    def test_surviving_shards_keep_claiming_and_strays_complete_once(
        self, tmp_path
    ):
        _kill_one_shard_race(tmp_path, n_jobs=24, n_workers=4, n_shards=2)

    @pytest.mark.stress
    def test_fleet_scale_kill_one_shard_exactly_once(self, tmp_path):
        _kill_one_shard_race(tmp_path, n_jobs=120, n_workers=8, n_shards=3)


class TestSingleShardPassThrough:
    """A 1-shard ``ShardedJobStore`` is the bare child store.

    The determinism pin: every record, claim, checkpoint and ordering
    visible through the wrapper is byte-identical to what the bare
    ``SqliteJobStore`` on the same database reports.  If composing one
    shard perturbs any byte, placement is leaking into state.
    """

    def test_byte_identical_to_the_bare_child_store(self, tmp_path):
        db = tmp_path / "solo.sqlite"
        store = ShardedJobStore([SqliteJobStore(db)], names=["solo"],
                                root=tmp_path / "spool")
        submitted = jobs(5)
        for job in submitted:
            store.submit(job, extras={"checkpoint_every": 10})
        assert store.claim(submitted[0].job_id, owner="w1")
        store.put_checkpoint(submitted[0].job_id, {"generation": 7},
                             owner="w1")
        record = store.get(submitted[1].job_id)
        store.mark_running(record)
        store.mark_completed(record, make_result(record.job))
        bare = SqliteJobStore(db)
        wrapped = [json.dumps(r.to_dict(), sort_keys=True)
                   for r in store.records()]
        direct = [json.dumps(r.to_dict(), sort_keys=True)
                  for r in bare.records()]
        assert wrapped == direct
        assert ([r.job_id for r in store.queued()]
                == [r.job_id for r in bare.queued()])
        bare_claims = bare.claims()
        sharded_claims = store.claims()
        assert set(sharded_claims) == set(bare_claims)
        for job_id, info in bare_claims.items():
            seen = dict(sharded_claims[job_id])
            assert seen.pop("shard") == "solo"
            assert set(seen) == set(info)  # same payload keys, + shard only
            assert seen["owner"] == info["owner"]
        assert (store.get_checkpoint(submitted[0].job_id)
                == bare.get_checkpoint(submitted[0].job_id)
                == {"generation": 7})

    def test_single_shard_claim_batch_matches_bare_store(self, tmp_path):
        db = tmp_path / "solo.sqlite"
        store = ShardedJobStore([SqliteJobStore(db)], names=["solo"],
                                root=tmp_path / "spool")
        for job in jobs(6):
            store.submit(job)
        batch = store.claim_batch(owner="w1", limit=4)
        bare = SqliteJobStore(db)
        expected = sorted(
            (r.submitted_at, r.job_id) for r in bare.records()
        )[:4]
        assert [(r.submitted_at, r.job_id) for r in batch] == expected


class TestShardSpec:
    def test_comma_list_spec(self, tmp_path):
        store = store_from_spec(
            f"shard:sqlite:{tmp_path}/a.sqlite,file:{tmp_path}/b",
            state_dir=tmp_path / "spool")
        assert isinstance(store, ShardedJobStore)
        assert store.spec.startswith("shard:sqlite:")
        assert len(store.shard_names) == 2
        job = jobs(1)[0]
        store.submit(job)
        assert store.get(job.job_id).job.job_id == job.job_id

    def test_manifest_spec_with_names(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({
            "shards": [
                {"name": "east", "spec": f"sqlite:{tmp_path}/east.sqlite"},
                {"name": "west", "spec": f"sqlite:{tmp_path}/west.sqlite"},
            ]
        }), encoding="utf-8")
        store = store_from_spec(f"shard:@{manifest}",
                                state_dir=tmp_path / "spool")
        assert store.shard_names == ["east", "west"]

    def test_manifest_bare_list(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps(
            [f"sqlite:{tmp_path}/a.sqlite", f"file:{tmp_path}/b"]
        ), encoding="utf-8")
        pairs = parse_shard_spec(f"@{manifest}")
        assert [spec for _, spec in pairs] == [
            f"sqlite:{tmp_path}/a.sqlite", f"file:{tmp_path}/b"]

    @pytest.mark.parametrize("body, message", [
        ("", "at least one child"),
        ("shard:sqlite:a.db", "cannot nest"),
        ("sqlite:a.db,sqlite:a.db", "duplicate"),
    ])
    def test_bad_bodies_rejected(self, body, message):
        with pytest.raises(ServiceError, match=message):
            parse_shard_spec(body)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="not found"):
            parse_shard_spec(f"@{tmp_path}/absent.json")

    def test_bad_manifest_entry_rejected(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({"shards": [42]}), encoding="utf-8")
        with pytest.raises(ServiceError, match="bad shard manifest entry"):
            parse_shard_spec(f"@{manifest}")

    def test_unknown_scheme_rejected_with_grammar(self, tmp_path):
        with pytest.raises(ServiceError) as excinfo:
            store_from_spec("sqllite:jobs.db")
        message = str(excinfo.value)
        assert "sqllite:" in message
        for grammar in ("file:DIR", "sqlite:PATH", "shard:"):
            assert grammar in message

    def test_existing_directory_with_colon_still_opens(self, tmp_path):
        # A user who really has a directory named like a scheme typo can
        # still open it: existence wins over the typo heuristic.
        weird = tmp_path / "odd:dir"
        weird.mkdir()
        store = store_from_spec(str(weird))
        assert isinstance(store, JobStore)

    def test_bare_paths_and_file_prefix_still_work(self, tmp_path):
        assert isinstance(store_from_spec(str(tmp_path / "plain")), JobStore)
        assert isinstance(store_from_spec(f"file:{tmp_path}/pref"), JobStore)


class TestStreamingMigrate:
    def test_migrate_emits_progress_chunks(self, tmp_path):
        registry = obs.enable()
        stream = io.StringIO()
        obs.configure_events(stream)
        try:
            source = SqliteJobStore(tmp_path / "src.sqlite")
            for job in jobs(7):
                source.submit(job)
            target = JobStore(tmp_path / "dst")
            counts = migrate_store(source, target, chunk_size=3)
            assert counts == {"records": 7, "checkpoints": 0, "traces": 0,
                              "migrants": 0}
            progress = [json.loads(line) for line in
                        stream.getvalue().splitlines()
                        if json.loads(line)["event"] == "migrate_progress"]
            assert [p["records"] for p in progress] == [3, 6, 7]
            assert progress[-1].get("done") is True
        finally:
            obs.disable()
            obs.configure_events(None)
            registry.reset()

    def test_iter_records_streams_everything(self, tmp_path):
        for store in (SqliteJobStore(tmp_path / "db.sqlite"),
                      JobStore(tmp_path / "dir")):
            for job in jobs(5):
                store.submit(job)
            streamed = sorted(r.job_id for r in store.iter_records())
            assert streamed == sorted(r.job_id for r in store.records())

    def test_migrate_into_a_shard_rebalances_onto_homes(self, tmp_path):
        source = JobStore(tmp_path / "src")
        submitted = jobs(10)
        for job in submitted:
            source.submit(job)
            source.put_checkpoint(job.job_id, {"seed": job.seed})
        target, children = two_shards(tmp_path / "fleet")
        counts = migrate_store(source, target)
        assert counts == {"records": 10, "checkpoints": 10, "traces": 0,
                          "migrants": 0}
        for job in submitted:
            home = target.shard_name_for(job.job_id)
            child = children[0 if home == "a" else 1]
            assert child.get(job.job_id, missing_ok=True) is not None
            assert child.get_checkpoint(job.job_id) == {"seed": job.seed}
        assert len(target.records()) == 10

    def test_migrate_shard_to_shard(self, tmp_path):
        source, _ = two_shards(tmp_path / "old")
        for job in jobs(6):
            source.submit(job)
        dest = ShardedJobStore(
            [SqliteJobStore(tmp_path / "new" / f"{n}.sqlite") for n in "xyz"],
            names=["x", "y", "z"], root=tmp_path / "new" / "spool")
        counts = migrate_store(source, dest)
        assert counts["records"] == 6
        assert ({r.job_id for r in dest.records()}
                == {r.job_id for r in source.records()})
