"""CLI over the network store: serve / --store-url flows end to end.

Everything here drives ``repro`` exactly as an operator would — one
``repro serve`` process (an in-process ``JobStoreServer`` standing in
for it), then ``submit`` / ``worker`` / ``status`` / ``resume`` pointed
at its URL from "other machines" (fresh spool directories).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import JobStore, JobStoreServer, ProtectionJob

TOKEN = "cli-t0k3n"


@pytest.fixture
def backing(tmp_path):
    return JobStore(tmp_path / "server-state")


@pytest.fixture
def server(backing):
    with JobStoreServer(backing, token=TOKEN) as live:
        yield live


def _remote(server, *args, spool):
    return ["--store-url", server.url, "--token", TOKEN, "--state-dir", str(spool),
            *args]


class TestServeCommand:
    def test_serve_prints_url_and_exits_on_interrupt(self, tmp_path, capsys,
                                                     monkeypatch):
        monkeypatch.setattr(
            "repro.service.netstore.JobStoreServer.serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        code = main(["serve", "--port", "0", "--token", "t",
                     "--state-dir", str(tmp_path / "state")])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving job store" in out
        assert "--store-url http://127.0.0.1:" in out

    def test_serve_without_token_warns(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TOKEN", raising=False)
        monkeypatch.setattr(
            "repro.service.netstore.JobStoreServer.serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        assert main(["serve", "--port", "0",
                     "--state-dir", str(tmp_path / "state")]) == 0
        assert "without a token" in capsys.readouterr().err


class TestRemoteSubmitAndWorker:
    def test_detached_submit_queues_on_server(self, server, backing, tmp_path):
        code = main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seeds", "31,32", "--detach",
                     *_remote(server, spool=tmp_path / "client")])
        assert code == 0
        job_ids = [ProtectionJob(dataset="adult", generations=1, seed=s).job_id
                   for s in (31, 32)]
        for job_id in job_ids:
            assert backing.get(job_id).status == "queued"

    def test_remote_worker_drains_server_queue(self, server, backing, tmp_path,
                                               capsys):
        main(["submit", "--dataset", "adult", "--generations", "1",
              "--seeds", "31,32", "--detach",
              *_remote(server, spool=tmp_path / "client")])
        capsys.readouterr()
        code = main(["worker", "--once", "--capacity", "2", "--no-cache",
                     *_remote(server, spool=tmp_path / "worker")])
        assert code == 0
        assert "ran 2 job(s)" in capsys.readouterr().out
        for seed in (31, 32):
            job_id = ProtectionJob(dataset="adult", generations=1, seed=seed).job_id
            assert backing.get(job_id).status == "completed"
        assert backing.claimed_job_ids() == []

    def test_status_shows_claim_owner_and_heartbeat_age(self, server, backing,
                                                        tmp_path, capsys):
        record = backing.submit(ProtectionJob(dataset="adult", generations=1,
                                              seed=41))
        backing.claim(record.job_id, owner="worker-on-host-9")
        backing.mark_running(record)
        code = main(["status", *_remote(server, spool=tmp_path / "client")])
        assert code == 0
        out = capsys.readouterr().out
        assert "owner" in out and "heartbeat" in out
        assert "worker-on-host-9" in out
        assert "s ago" in out

    def test_status_single_job_over_store_url(self, server, backing, tmp_path,
                                              capsys):
        record = backing.submit(ProtectionJob(dataset="adult", generations=1,
                                              seed=42))
        code = main(["status", "--job", record.job_id,
                     *_remote(server, spool=tmp_path / "client")])
        assert code == 0
        assert record.job_id in capsys.readouterr().out


class TestRemoteResume:
    def test_resume_over_store_url_continues_bit_identically(
        self, server, backing, tmp_path, capsys
    ):
        # A checkpointed job runs to completion through the remote store
        # (its checkpoint is uploaded server-side when the claim is
        # released); then the record "crashes" back to running and a
        # *different machine* — a fresh spool that has never seen the
        # checkpoint — resumes it through `repro resume --store-url`.
        assert main(["submit", "--dataset", "adult", "--generations", "3",
                     "--seed", "63", "--checkpoint-every", "2",
                     *_remote(server, spool=tmp_path / "machine-a")]) == 0
        job_id = ProtectionJob(dataset="adult", generations=3, seed=63).job_id
        straight = backing.get(job_id).result
        assert straight is not None
        assert (backing.checkpoints_dir / f"{job_id}.json").exists()

        crashed = backing.get(job_id)
        crashed.status = "running"
        crashed.result = None
        backing.save(crashed)
        capsys.readouterr()

        assert main(["resume", "--job", job_id,
                     *_remote(server, spool=tmp_path / "machine-b")]) == 0
        resumed = backing.get(job_id)
        assert resumed.status == "completed"
        # Bit-identical continuation: the same scores the uninterrupted
        # run produced, for the whole final population and the best.
        assert resumed.result.final_scores == straight.final_scores
        assert resumed.result.best_score == straight.best_score
        assert resumed.result.best_information_loss == straight.best_information_loss
        assert resumed.result.best_disclosure_risk == straight.best_disclosure_risk
        # And it really continued from the wire-transferred checkpoint
        # rather than recomputing the run from scratch.
        assert resumed.result.fresh_evaluations < straight.fresh_evaluations
        assert (tmp_path / "machine-b" / "checkpoints" / f"{job_id}.json").exists()
        assert backing.claimed_job_ids() == []

    def test_resume_without_server_checkpoint_fails_cleanly(
        self, server, backing, tmp_path, capsys
    ):
        record = backing.submit(ProtectionJob(dataset="adult", generations=1,
                                              seed=77))
        backing.mark_running(record)
        code = main(["resume", "--job", record.job_id,
                     *_remote(server, spool=tmp_path / "machine-b")])
        assert code == 2
        assert "no checkpoint" in capsys.readouterr().err
        # The failed attempt must not leave its claim behind.
        assert backing.claimed_job_ids() == []
