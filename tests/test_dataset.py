"""Unit tests for CategoricalDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDataset
from repro.exceptions import SchemaError


class TestConstruction:
    def test_shape_properties(self, tiny_dataset):
        assert tiny_dataset.n_records == 12
        assert tiny_dataset.n_attributes == 3
        assert tiny_dataset.n_cells == 36
        assert tiny_dataset.attribute_names == ("COLOR", "SIZE", "SHAPE")

    def test_codes_are_read_only(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.codes[0, 0] = 1

    def test_constructor_copies_input(self, tiny_schema):
        codes = np.zeros((2, 3), dtype=np.int64)
        dataset = CategoricalDataset(codes, tiny_schema)
        codes[0, 0] = 2
        assert dataset.codes[0, 0] == 0

    def test_wrong_dimensionality_rejected(self, tiny_schema):
        with pytest.raises(SchemaError):
            CategoricalDataset(np.zeros(3, dtype=np.int64), tiny_schema)

    def test_wrong_column_count_rejected(self, tiny_schema):
        with pytest.raises(SchemaError):
            CategoricalDataset(np.zeros((2, 2), dtype=np.int64), tiny_schema)

    def test_out_of_domain_codes_rejected(self, tiny_schema):
        codes = np.zeros((2, 3), dtype=np.int64)
        codes[1, 0] = 99
        with pytest.raises(Exception):
            CategoricalDataset(codes, tiny_schema)

    def test_from_labels_roundtrip(self, tiny_schema):
        rows = [["red", "M", "round"], ["blue", "XL", "square"]]
        dataset = CategoricalDataset.from_labels(rows, tiny_schema)
        assert dataset.to_labels() == rows

    def test_from_labels_bad_row_length(self, tiny_schema):
        with pytest.raises(SchemaError):
            CategoricalDataset.from_labels([["red", "M"]], tiny_schema)

    def test_from_columns_infers_domains(self):
        dataset = CategoricalDataset.from_columns(
            {"A": ["x", "y", "x"], "B": ["1", "2", "3"]}, ordinal=["B"]
        )
        assert dataset.n_records == 3
        assert dataset.domain("A").categories == ("x", "y")
        assert dataset.domain("B").ordinal

    def test_from_columns_unequal_lengths(self):
        with pytest.raises(SchemaError):
            CategoricalDataset.from_columns({"A": ["x"], "B": ["1", "2"]})

    def test_from_columns_unknown_ordinal(self):
        with pytest.raises(SchemaError):
            CategoricalDataset.from_columns({"A": ["x"]}, ordinal=["Z"])


class TestAccessors:
    def test_column_by_name_and_index(self, tiny_dataset):
        assert np.array_equal(tiny_dataset.column("SIZE"), tiny_dataset.column(1))

    def test_column_labels(self, tiny_dataset):
        labels = tiny_dataset.column_labels("COLOR")
        assert len(labels) == 12
        assert set(labels) <= {"red", "green", "blue"}

    def test_record_labels(self, tiny_dataset):
        record = tiny_dataset.record_labels(0)
        assert len(record) == 3

    def test_value_counts_includes_zero_categories(self, tiny_schema):
        codes = np.zeros((5, 3), dtype=np.int64)
        dataset = CategoricalDataset(codes, tiny_schema)
        counts = dataset.value_counts("SIZE")
        assert counts.tolist() == [5, 0, 0, 0]

    def test_codes_copy_is_writable_and_independent(self, tiny_dataset):
        copy = tiny_dataset.codes_copy()
        copy[0, 0] = (copy[0, 0] + 1) % 3
        assert not np.array_equal(copy, tiny_dataset.codes)


class TestTransformations:
    def test_with_codes(self, tiny_dataset):
        new_codes = tiny_dataset.codes_copy()
        new_codes[:, 0] = 0
        derived = tiny_dataset.with_codes(new_codes, name="derived")
        assert derived.name == "derived"
        assert derived.column("COLOR").sum() == 0
        # Original untouched.
        assert not np.array_equal(derived.codes, tiny_dataset.codes) or True

    def test_replace_column(self, tiny_dataset):
        derived = tiny_dataset.replace_column("SHAPE", np.ones(12, dtype=np.int64))
        assert derived.column("SHAPE").tolist() == [1] * 12
        assert np.array_equal(derived.column("COLOR"), tiny_dataset.column("COLOR"))

    def test_select_attributes(self, tiny_dataset):
        sub = tiny_dataset.select_attributes(["SHAPE", "COLOR"])
        assert sub.attribute_names == ("SHAPE", "COLOR")
        assert np.array_equal(sub.column("COLOR"), tiny_dataset.column("COLOR"))

    def test_renamed(self, tiny_dataset):
        assert tiny_dataset.renamed("other").name == "other"


class TestComparisons:
    def test_require_compatible_record_count(self, tiny_dataset, tiny_schema):
        other = CategoricalDataset(np.zeros((3, 3), dtype=np.int64), tiny_schema)
        with pytest.raises(SchemaError, match="record counts differ"):
            tiny_dataset.require_compatible(other)

    def test_equals(self, tiny_dataset):
        clone = tiny_dataset.with_codes(tiny_dataset.codes_copy())
        assert tiny_dataset.equals(clone)

    def test_cells_changed(self, tiny_dataset):
        codes = tiny_dataset.codes_copy()
        codes[0, 0] = (codes[0, 0] + 1) % 3
        codes[5, 2] = 1 - codes[5, 2]
        changed = tiny_dataset.with_codes(codes)
        assert tiny_dataset.cells_changed(changed) == 2

    def test_fingerprint_distinguishes_content(self, tiny_dataset):
        codes = tiny_dataset.codes_copy()
        codes[0, 0] = (codes[0, 0] + 1) % 3
        assert tiny_dataset.fingerprint() != tiny_dataset.with_codes(codes).fingerprint()

    def test_fingerprint_stable(self, tiny_dataset):
        assert tiny_dataset.fingerprint() == tiny_dataset.fingerprint()
