"""Property-based tests for the genetic operators and selection.

These pin the invariants the paper's algorithm depends on:

* mutation changes exactly one protected cell to another in-domain value;
* crossover swaps a contiguous flattened range, so cell-wise the two
  offspring hold exactly the two parents' values (conservation), and
  offspring equal their parents outside the swapped range;
* selection probabilities are a valid distribution for every strategy.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import crossover, mutate
from repro.core.selection import STRATEGIES, selection_probabilities
from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema


@st.composite
def masked_pairs(draw):
    """A small dataset pair sharing a schema, plus the protected attributes."""
    n_attributes = draw(st.integers(min_value=1, max_value=3))
    sizes = [draw(st.integers(min_value=2, max_value=8)) for __ in range(n_attributes)]
    schema = DatasetSchema(
        [
            CategoricalDomain(f"A{i}", [f"c{j}" for j in range(size)], ordinal=bool(i % 2))
            for i, size in enumerate(sizes)
        ]
    )
    n_records = draw(st.integers(min_value=1, max_value=25))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    make = lambda: CategoricalDataset(
        np.column_stack(
            [rng.integers(0, size, size=n_records) for size in sizes]
        ),
        schema,
    )
    attrs = draw(
        st.lists(
            st.sampled_from([f"A{i}" for i in range(n_attributes)]),
            min_size=1,
            max_size=n_attributes,
            unique=True,
        )
    )
    return make(), make(), attrs


class TestMutationProperties:
    @given(masked_pairs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60)
    def test_exactly_one_cell_changes_inside_domain(self, pair, seed):
        dataset, __, attrs = pair
        child = mutate(dataset, attrs, seed=seed)
        diff = dataset.codes != child.codes
        assert diff.sum() == 1
        row, col = map(int, np.argwhere(diff)[0])
        domain = dataset.schema.domain(col)
        assert domain.name in attrs
        assert 0 <= child.codes[row, col] < domain.size
        assert child.codes[row, col] != dataset.codes[row, col]


class TestCrossoverProperties:
    @given(masked_pairs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60)
    def test_cellwise_conservation(self, pair, seed):
        first, second, attrs = pair
        child_a, child_b = crossover(first, second, attrs, seed=seed)
        columns = [first.schema.index_of(a) for a in attrs]
        pa, pb = first.codes[:, columns], second.codes[:, columns]
        ca, cb = child_a.codes[:, columns], child_b.codes[:, columns]
        # Each cell of the children comes from the corresponding cell of a
        # parent, and jointly the children hold both parents' cells.
        swapped = (ca == pb) & (cb == pa)
        kept = (ca == pa) & (cb == pb)
        assert np.logical_or(swapped, kept).all()

    @given(masked_pairs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60)
    def test_swap_region_contiguous_in_flat_order(self, pair, seed):
        first, second, attrs = pair
        child_a, __ = crossover(first, second, attrs, seed=seed)
        columns = [first.schema.index_of(a) for a in attrs]
        flat_parent = first.codes[:, columns].reshape(-1)
        flat_other = second.codes[:, columns].reshape(-1)
        flat_child = child_a.codes[:, columns].reshape(-1)
        definitely_swapped = np.nonzero((flat_child == flat_other) & (flat_child != flat_parent))[0]
        if definitely_swapped.size >= 2:
            lo, hi = definitely_swapped[0], definitely_swapped[-1]
            inside = np.arange(lo, hi + 1)
            # Inside the inferred swap range every cell must match the
            # other parent (it was swapped wholesale).
            assert (flat_child[inside] == flat_other[inside]).all()

    @given(masked_pairs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60)
    def test_unprotected_columns_inherit_from_own_parent(self, pair, seed):
        first, second, attrs = pair
        child_a, child_b = crossover(first, second, attrs, seed=seed)
        for i, name in enumerate(first.attribute_names):
            if name in attrs:
                continue
            assert np.array_equal(child_a.codes[:, i], first.codes[:, i])
            assert np.array_equal(child_b.codes[:, i], second.codes[:, i])


class TestSelectionProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=40),
        st.sampled_from(STRATEGIES),
    )
    @settings(max_examples=120)
    def test_valid_probability_distribution(self, scores, strategy):
        probs = selection_probabilities(np.array(scores), strategy)
        assert probs.shape == (len(scores),)
        assert (probs >= 0).all()
        assert probs.sum() == np.float64(1.0) or abs(probs.sum() - 1.0) < 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=40))
    @settings(max_examples=80)
    def test_proportional_monotone_in_score(self, scores):
        values = np.array(scores)
        probs = selection_probabilities(values, "proportional")
        order = np.argsort(values)
        sorted_probs = probs[order]
        assert (np.diff(sorted_probs) <= 1e-12).all()
