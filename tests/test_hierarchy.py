"""Unit tests for value generalization hierarchies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDomain
from repro.exceptions import HierarchyError
from repro.hierarchy import ValueHierarchy, fanout_hierarchy, frequency_hierarchy


def domain(size: int, name: str = "X") -> CategoricalDomain:
    return CategoricalDomain(name, [f"c{i}" for i in range(size)])


class TestValueHierarchy:
    def test_level_zero_is_identity(self):
        h = ValueHierarchy(domain(4), [np.array([0, 0, 1, 1])])
        assert h.n_levels == 2
        assert h.n_groups(0) == 4
        assert h.group_of(0).tolist() == [0, 1, 2, 3]

    def test_group_structure(self):
        h = ValueHierarchy(domain(4), [np.array([0, 0, 1, 1]), np.array([0, 0, 0, 0])])
        assert h.n_groups(1) == 2
        assert h.n_groups(2) == 1
        assert h.members(1, 0).tolist() == [0, 1]
        assert h.members(2, 0).tolist() == [0, 1, 2, 3]

    def test_generalize_codes(self):
        h = ValueHierarchy(domain(4), [np.array([0, 0, 1, 1])])
        out = h.generalize_codes(np.array([0, 1, 2, 3, 0]), 1)
        assert out.tolist() == [0, 0, 1, 1, 0]

    def test_generalize_level_zero_identity(self):
        h = ValueHierarchy(domain(4), [np.array([0, 0, 1, 1])])
        assert h.generalize_codes(np.array([2, 3]), 0).tolist() == [2, 3]

    def test_wrong_map_shape_rejected(self):
        with pytest.raises(HierarchyError, match="shape"):
            ValueHierarchy(domain(4), [np.array([0, 0, 1])])

    def test_non_contiguous_groups_rejected(self):
        with pytest.raises(HierarchyError, match="contiguous"):
            ValueHierarchy(domain(3), [np.array([0, 2, 2])])

    def test_non_coarsening_rejected(self):
        # Level 1 groups {0,1} together; level 2 must not split them.
        with pytest.raises(HierarchyError, match="splits"):
            ValueHierarchy(
                domain(4),
                [np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1])],
            )

    def test_level_out_of_range(self):
        h = ValueHierarchy(domain(2), [np.array([0, 0])])
        with pytest.raises(HierarchyError):
            h.n_groups(5)

    def test_missing_group_raises(self):
        h = ValueHierarchy(domain(2), [np.array([0, 0])])
        with pytest.raises(HierarchyError):
            h.members(1, 3)


class TestFanoutBuilder:
    def test_fanout_two_halves_each_level(self):
        h = fanout_hierarchy(domain(8), fanout=2)
        assert [h.n_groups(level) for level in range(h.n_levels)] == [8, 4, 2, 1]

    def test_fanout_non_power(self):
        h = fanout_hierarchy(domain(5), fanout=2)
        assert h.n_groups(1) == 3
        assert h.n_groups(h.n_levels - 1) == 1

    def test_adjacent_categories_grouped(self):
        h = fanout_hierarchy(domain(6), fanout=3)
        assert h.group_of(1).tolist() == [0, 0, 0, 1, 1, 1]

    def test_single_category_domain(self):
        h = fanout_hierarchy(domain(1))
        assert h.n_levels == 1

    def test_bad_fanout(self):
        with pytest.raises(HierarchyError):
            fanout_hierarchy(domain(4), fanout=1)


class TestFrequencyBuilder:
    def test_rarest_merged_first(self, tiny_dataset):
        color = tiny_dataset.domain("COLOR")
        h = frequency_hierarchy(color, tiny_dataset, fanout=2)
        counts = tiny_dataset.value_counts("COLOR")
        level1 = h.group_of(1)
        # The two rarest categories share a group at level 1.
        order = np.lexsort((np.arange(3), counts))
        assert level1[order[0]] == level1[order[1]]

    def test_reaches_single_group(self, tiny_dataset):
        h = frequency_hierarchy(tiny_dataset.domain("SIZE"), tiny_dataset)
        assert h.n_groups(h.n_levels - 1) == 1

    def test_domain_mismatch_rejected(self, tiny_dataset):
        with pytest.raises(HierarchyError):
            frequency_hierarchy(domain(7, "COLOR"), tiny_dataset, attribute="COLOR")

    def test_bad_fanout(self, tiny_dataset):
        with pytest.raises(HierarchyError):
            frequency_hierarchy(tiny_dataset.domain("COLOR"), tiny_dataset, fanout=0)
