"""Worker lifecycle: draining, failure marking, requeue, stale recovery."""

from __future__ import annotations

import json
import time

import pytest

from repro.exceptions import WorkerError
from repro.service import ClaimHeartbeat, JobStore, ProtectionJob, Worker


def _job(seed: int = 1, generations: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=generations, seed=seed)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path)


class TestRunOnce:
    def test_drains_queue_and_completes(self, store):
        first = store.submit(_job(1))
        second = store.submit(_job(2))
        outcomes = Worker(store).run_once()
        assert sorted(out.job_id for out in outcomes) == sorted(
            [first.job_id, second.job_id]
        )
        assert all(out.ok for out in outcomes)
        for record in (first, second):
            loaded = store.get(record.job_id)
            assert loaded.status == "completed"
            assert loaded.result is not None
        assert store.claimed_job_ids() == []

    def test_empty_queue_returns_nothing(self, store):
        assert Worker(store).run_once() == []

    def test_failure_marks_failed_and_releases(self, store):
        record = store.submit(ProtectionJob(dataset="no-such-dataset", generations=1))
        (outcome,) = Worker(store).run_once()
        assert not outcome.ok
        loaded = store.get(record.job_id)
        assert loaded.status == "failed"
        assert loaded.error
        assert store.claimed_job_ids() == []

    def test_honours_submit_time_checkpoint_cadence(self, store):
        record = store.submit(_job(3, generations=2))
        record.extras["checkpoint_every"] = 1
        store.save(record)
        (outcome,) = Worker(store).run_once()
        assert outcome.ok
        assert (store.checkpoints_dir / f"{record.job_id}.json").exists()

    def test_skips_jobs_claimed_elsewhere(self, store):
        record = store.submit(_job(1))
        store.claim(record.job_id, owner="someone-else")
        assert Worker(store).run_once() == []
        assert store.get(record.job_id).status == "queued"

    def test_process_skips_record_that_left_queue(self, store):
        record = store.submit(_job(1))
        stale_view = store.get(record.job_id)
        store.mark_running(record)
        assert Worker(store).process(stale_view) is None
        assert store.get(record.job_id).status == "running"
        assert store.claimed_job_ids() == []


class TestRunLoop:
    def test_idle_exit_stops_polling(self, store):
        outcomes = Worker(store).run(poll_seconds=0.01, idle_exit=2)
        assert outcomes == []

    def test_max_jobs_stops_after_bound(self, store):
        store.submit(_job(1))
        store.submit(_job(2))
        outcomes = Worker(store).run(poll_seconds=0.01, max_jobs=1)
        assert len(outcomes) == 1
        statuses = sorted(r.status for r in store.records())
        assert statuses == ["completed", "queued"]

    def test_bad_parameters_rejected(self, store):
        with pytest.raises(WorkerError, match="stale_after"):
            Worker(store, stale_after=0)
        with pytest.raises(WorkerError, match="poll_seconds"):
            Worker(store).run(poll_seconds=0)
        with pytest.raises(WorkerError, match="poll_max"):
            Worker(store).run(poll_seconds=2.0, poll_max=1.0)

    def test_idle_polls_back_off_to_poll_max(self, store, monkeypatch):
        # An idle fleet must not hammer the store: each consecutive
        # empty poll doubles the sleep, capped at poll_max.
        sleeps: list[float] = []
        monkeypatch.setattr("repro.service.worker.time.sleep", sleeps.append)
        Worker(store).run(poll_seconds=1.0, poll_max=8.0, idle_exit=6)
        assert sleeps == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_claim_resets_the_backoff(self, store, monkeypatch):
        # Two empty polls grow the delay; then work appears, is run,
        # and the next sleep is back at the base cadence.
        sleeps: list[float] = []
        polls = {"count": 0}
        monkeypatch.setattr("repro.service.worker.time.sleep", sleeps.append)
        original_run_once = Worker.run_once

        def run_once_with_late_job(self, max_jobs=0):
            polls["count"] += 1
            if polls["count"] == 3:
                store.submit(_job(1))
            return original_run_once(self, max_jobs=max_jobs)

        monkeypatch.setattr(Worker, "run_once", run_once_with_late_job)
        outcomes = Worker(store, use_cache=False).run(
            poll_seconds=1.0, poll_max=8.0, idle_exit=3
        )
        assert len(outcomes) == 1
        # sleeps: two idle polls grow the delay (1, 2), the working
        # poll resets it (1), then the backoff restarts from the base
        # (1, 2) until the third consecutive idle poll exits.
        assert sleeps == [1.0, 2.0, 1.0, 1.0, 2.0]

    def test_no_poll_max_keeps_constant_cadence(self, store, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr("repro.service.worker.time.sleep", sleeps.append)
        Worker(store).run(poll_seconds=0.5, idle_exit=4)
        assert sleeps == [0.5, 0.5, 0.5]

    def test_bad_runner_config_fails_before_claiming(self, store):
        # Regression: a runner-construction error discovered only after
        # mark_running would strand the record in `running` forever.
        from repro.exceptions import ServiceError

        record = store.submit(_job(1))
        with pytest.raises(ServiceError):
            Worker(store, backend="quantum")
        with pytest.raises(WorkerError, match="cache_max_entries"):
            Worker(store, cache_max_entries=0)
        assert store.get(record.job_id).status == "queued"
        assert store.claimed_job_ids() == []


class TestRequeue:
    def test_requeue_clears_attempt_state(self, store):
        record = store.submit(_job(1))
        store.mark_running(record)
        store.claim(record.job_id)
        requeued = store.requeue(record)
        assert requeued.status == "queued"
        assert requeued.started_at is None and requeued.error == ""
        assert store.claimed_job_ids() == []

    def test_requeue_failed_record(self, store):
        record = store.submit(_job(1))
        store.mark_failed(record, "boom")
        assert store.requeue(record).status == "queued"

    def test_requeue_completed_refused(self, store):
        record = store.submit(_job(1))
        assert Worker(store).run_once()[0].ok
        completed = store.get(record.job_id)
        with pytest.raises(WorkerError, match="refusing to requeue"):
            store.requeue(completed)

    def test_requeue_checks_on_disk_status(self, store):
        # Regression: requeue with a stale 'running' snapshot must not
        # clobber a record another worker completed meanwhile.
        from repro.service import JobResult

        record = store.submit(_job(1))
        store.mark_running(record)
        stale_view = store.get(record.job_id)
        result = JobResult(
            job_id=record.job_id, dataset="adult", seed=1, generations=1,
            best_score=1.0, best_information_loss=1.0, best_disclosure_risk=1.0,
            final_scores=(1.0,), mean_improvement_percent=0.0,
            fresh_evaluations=1, memo_hits=0, persistent_hits=0, wall_seconds=0.1,
        )
        store.mark_completed(record, result)
        with pytest.raises(WorkerError, match="refusing to requeue"):
            store.requeue(stale_view)
        assert store.get(record.job_id).status == "completed"


def _age_claim(store, job_id, seconds):
    # A worker dead for `seconds` left both timestamps behind.
    path = store.claim_path(job_id)
    info = json.loads(path.read_text(encoding="utf-8"))
    info["claimed_at"] = time.time() - seconds
    info["last_seen"] = time.time() - seconds
    path.write_text(json.dumps(info), encoding="utf-8")


class TestHeartbeats:
    def test_default_interval_is_quarter_of_stale_after(self, store):
        assert Worker(store, stale_after=100).heartbeat_every == 25.0
        assert Worker(store, stale_after=100, heartbeat_every=3).heartbeat_every == 3.0

    def test_default_worker_ids_unique_per_instance(self, store):
        # Same-owner re-claims are idempotent, so two workers — even in
        # one process, even across pid reuse — must never share an id.
        assert Worker(store).worker_id != Worker(store).worker_id

    def test_bad_capacity_and_interval_rejected(self, store):
        with pytest.raises(WorkerError, match="capacity"):
            Worker(store, capacity=0)
        with pytest.raises(WorkerError, match="heartbeat_every"):
            Worker(store, heartbeat_every=0)
        # Beating no faster than the staleness bound would let live jobs
        # look abandoned and get double-executed.
        with pytest.raises(WorkerError, match="smaller than stale_after"):
            Worker(store, stale_after=10, heartbeat_every=10)

    def test_claim_heartbeat_beats_immediately_on_start(self, store):
        # The first beat lands at start, not one interval later, so even
        # a job faster than the interval records liveness at least once.
        store.claim("j1", owner="w")
        _age_claim(store, "j1", seconds=500)
        aged = store.claim_info("j1")["last_seen"]
        beat = ClaimHeartbeat(store, ["j1"], "w", interval=3600.0).start()
        try:
            deadline = time.time() + 5.0
            # .get(): a poll can read the claim mid-rewrite and see {}.
            while store.claim_info("j1").get("last_seen", aged) == aged:
                assert time.time() < deadline, "no heartbeat landed"
                time.sleep(0.01)
        finally:
            beat.stop()
        assert store.claim_info("j1")["last_seen"] > aged

    def test_heartbeatless_claim_recovered_while_beating_one_kept(self, store):
        # Regression for the crash-between-claim-and-update hole: with
        # claimed_at as the only signal, a long job and a dead worker
        # looked identical.  Heartbeats split them: the silent claim is
        # recovered after stale_after, the actively beating one is not.
        dead = store.submit(_job(1))
        alive = store.submit(_job(2))
        for record, owner in ((dead, "crashed"), (alive, "long-runner")):
            store.claim(record.job_id, owner=owner)
            store.mark_running(record)
            _age_claim(store, record.job_id, seconds=7200)
        assert store.heartbeat(alive.job_id, owner="long-runner") is True

        recovered = store.recover_stale_claims(max_age_seconds=3600)

        assert recovered == [dead.job_id]
        assert store.get(dead.job_id).status == "queued"
        assert store.get(alive.job_id).status == "running"
        assert store.claimed_job_ids() == [alive.job_id]

    def test_worker_heartbeats_its_claims_while_running(self, tmp_path):
        beats = []

        class RecordingStore(JobStore):
            def heartbeat(self, job_id, owner=""):
                beats.append((job_id, owner))
                return super().heartbeat(job_id, owner)

        store = RecordingStore(tmp_path)
        record = store.submit(_job(1))
        worker = Worker(store, worker_id="beater", use_cache=False)
        (outcome,) = worker.run_once()
        assert outcome.ok
        assert (record.job_id, "beater") in beats


class TestClaimBatchSafety:
    def test_store_failure_mid_batch_releases_every_held_claim(self, tmp_path):
        # Regression: a transient store failure between claiming job A
        # and validating job B used to leak A's claim, stranding A
        # queued-but-claimed until stale recovery.
        from repro.exceptions import ServiceError
        from repro.service.worker import claim_queued

        class FlakyStore(JobStore):
            fail_after = None

            def get(self, job_id, missing_ok=False):
                if self.fail_after is not None:
                    if self.fail_after == 0:
                        raise ServiceError("store went away")
                    self.fail_after -= 1
                return super().get(job_id, missing_ok)

        store = FlakyStore(tmp_path)
        for seed in (1, 2):
            store.submit(_job(seed))
        store.fail_after = 1  # first post-claim re-read works, second fails
        with pytest.raises(ServiceError, match="went away"):
            claim_queued(store, store.queued(), "w")
        assert store.claimed_job_ids() == []


class TestCapacity:
    def test_capacity_batches_claims(self, store):
        for seed in (1, 2, 3):
            store.submit(_job(seed))
        worker = Worker(store, capacity=2, use_cache=False)
        batch = worker._claim_batch(worker.capacity)
        assert len(batch) == 2
        assert sorted(store.claimed_job_ids()) == sorted(r.job_id for r in batch)
        for record in batch:
            store.release(record.job_id, owner=worker.worker_id)

    def test_capacity_worker_drains_whole_queue(self, store):
        jobs = [store.submit(_job(seed)) for seed in (1, 2, 3)]
        worker = Worker(store, capacity=2, backend="thread", max_workers=2)
        outcomes = worker.run_once()
        assert sorted(out.job_id for out in outcomes) == sorted(r.job_id for r in jobs)
        assert all(out.ok for out in outcomes)
        for record in jobs:
            assert store.get(record.job_id).status == "completed"
        assert store.claimed_job_ids() == []

    def test_capacity_respects_max_jobs(self, store):
        for seed in (1, 2, 3):
            store.submit(_job(seed))
        outcomes = Worker(store, capacity=3).run_once(max_jobs=2)
        assert len(outcomes) == 2
        statuses = sorted(r.status for r in store.records())
        assert statuses == ["completed", "completed", "queued"]


class TestStaleClaimRecovery:
    def test_old_claim_on_running_job_requeues(self, store):
        record = store.submit(_job(1))
        store.claim(record.job_id, owner="crashed-worker")
        store.mark_running(record)
        _age_claim(store, record.job_id, seconds=7200)
        recovered = store.recover_stale_claims(max_age_seconds=3600)
        assert recovered == [record.job_id]
        assert store.get(record.job_id).status == "queued"
        assert store.claimed_job_ids() == []

    def test_fresh_claim_left_alone(self, store):
        record = store.submit(_job(1))
        store.claim(record.job_id)
        store.mark_running(record)
        assert store.recover_stale_claims(max_age_seconds=3600) == []
        assert store.claimed_job_ids() == [record.job_id]

    def test_claim_for_finished_job_dropped(self, store):
        record = store.submit(_job(1))
        store.mark_failed(record, "boom")
        store.claim(record.job_id)
        recovered = store.recover_stale_claims(max_age_seconds=3600)
        assert recovered == [record.job_id]
        # The failed record itself is untouched — only the claim went.
        assert store.get(record.job_id).status == "failed"

    def test_recovered_job_is_rerun_by_next_worker(self, store):
        record = store.submit(_job(1))
        store.claim(record.job_id, owner="crashed-worker")
        store.mark_running(record)
        _age_claim(store, record.job_id, seconds=7200)
        worker = Worker(store, stale_after=3600)
        (outcome,) = worker.run_once()
        assert outcome.ok and outcome.job_id == record.job_id
        assert store.get(record.job_id).status == "completed"

    def test_recovered_job_resumes_from_checkpoint(self, store):
        # Regression: recovery used to re-run interrupted jobs from
        # scratch, discarding the checkpoint the crashed worker wrote.
        job = _job(7, generations=3)
        record = store.submit(job)
        record.extras["checkpoint_every"] = 2
        store.save(record)
        worker = Worker(store, use_cache=False)
        (full,) = worker.run_once()
        assert full.ok
        assert (store.checkpoints_dir / f"{record.job_id}.json").exists()

        # Simulate a crash after the last checkpoint and its recovery.
        crashed = store.get(record.job_id)
        crashed.status = "running"
        crashed.result = None
        store.save(crashed)
        store.requeue(crashed)
        (resumed,) = worker.run_once()
        assert resumed.ok
        assert resumed.result.final_scores == full.result.final_scores
        # Continuing from the checkpoint skips the work already done,
        # so the resumed attempt evaluates strictly less than a rerun.
        assert resumed.result.fresh_evaluations < full.result.fresh_evaluations

    def test_foreign_checkpoint_is_not_resumed(self, store):
        record = store.submit(_job(8))
        (store.checkpoints_dir / f"{record.job_id}.json").write_text(
            '{"version": 1, "fingerprint": "someone-else"}'
        )
        assert Worker(store)._resumable(record) is False

    def test_release_respects_ownership(self, store):
        # Regression: a worker's final release used to unlink claims it
        # no longer owned, cascading double-runs into triple-runs.
        store.claim("j1", owner="worker-a")
        assert store.release("j1", owner="worker-b") is False
        assert store.claimed_job_ids() == ["j1"]
        assert store.release("j1", owner="worker-a") is True
        assert store.claimed_job_ids() == []
        assert store.release("j1", owner="worker-a") is False

    def test_resubmit_failed_drops_leftover_claim(self, store):
        # Regression: a crash between mark_failed and release left a
        # claim that made the resubmitted job unclaimable for an hour.
        record = store.submit(_job(9))
        store.claim(record.job_id, owner="crashed-worker")
        store.mark_failed(record, "boom")
        again = store.submit(_job(9))
        assert again.status == "queued"
        assert store.claimed_job_ids() == []
        assert store.claim(record.job_id, owner="next-worker") is True
