"""Fleet-level island tests: determinism across workers and stores.

The island driver's headline contract: for a fixed seed, the search
result is bit-identical no matter how many workers drive the group,
which store backend carries the migrant blobs, or which worker dies
mid-exchange.  Every test here compares against one reference run
(a single worker on a plain file store) — not against pinned numbers —
so the assertions survive engine retuning while still catching any
scheduling- or backend-dependent drift.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.service import JobStore, ProtectionJob, Worker, plan_island_jobs

#: Tiny but real: full Flare through the actual engine, one exchange
#: round (generation 1 of 2; the final generation never exchanges).
BASE = ProtectionJob(dataset="flare", generations=2, seed=11)
PLAN = dict(migrate_every=1, migrants=1, topology="ring")


def _submit_group(store, islands: int = 2, base: ProtectionJob = BASE):
    jobs = plan_island_jobs(base, islands, **PLAN)
    for job in jobs:
        store.submit(job)
    return jobs


def _snapshot(store, jobs) -> dict:
    """Every member's full result surface, keyed by island index."""
    snapshot = {}
    for job in jobs:
        record = store.get(job.job_id)
        assert record.status == "completed", (
            f"{record.job_id} finished {record.status}: {record.error}"
        )
        island = record.result.extras["island"]
        snapshot[job.island_index] = {
            "best": record.result.best_score,
            "il": record.result.best_information_loss,
            "dr": record.result.best_disclosure_risk,
            "population": island.get("population"),
            "front": island.get("front"),
            "degraded": island.get("degraded", island.get("degraded_members")),
        }
    return snapshot


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The group's canonical outcome: one worker, one file store."""
    store = JobStore(tmp_path_factory.mktemp("island-reference"))
    jobs = _submit_group(store)
    Worker(store, worker_id="reference-worker").run_once()
    return _snapshot(store, jobs)


def _drive_with_threads(store, n_workers: int) -> None:
    """Run ``n_workers`` concurrent Workers until the queue drains."""
    def drive(index: int) -> None:
        Worker(store, worker_id=f"fleet-w{index}").run(
            poll_seconds=0.05, idle_exit=5,
        )

    threads = [threading.Thread(target=drive, args=(i,), daemon=True)
               for i in range(n_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive(), "island fleet worker wedged"


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_bit_identical_across_worker_counts(tmp_path, reference, n_workers):
    store = JobStore(tmp_path / "store")
    jobs = _submit_group(store)
    _drive_with_threads(store, n_workers)
    assert _snapshot(store, jobs) == reference


def test_bit_identical_across_store_backends(store_harness, reference):
    jobs = _submit_group(store_harness.store)
    Worker(store_harness.store, worker_id="backend-worker").run_once()
    assert _snapshot(store_harness.store, jobs) == reference


def test_worker_death_mid_exchange_recovers(tmp_path, reference):
    store = JobStore(tmp_path / "store")
    jobs = _submit_group(store)

    # Island 0 runs to its exchange, publishes round 1, finds island 1
    # unpublished, and parks — its pre-injection checkpoint is durable.
    first = Worker(store, worker_id="first-worker", stale_after=3600.0)
    outcome = first.process(store.get(jobs[0].job_id))
    assert outcome is not None and outcome.parked is not None
    assert outcome.parked["round"] == 1

    # A second worker claims island 1 and dies mid-run: claim held,
    # status running, heartbeat silent.
    victim = jobs[1].job_id
    assert store.claim(victim, owner="doomed-worker")
    store.mark_running(store.get(victim))
    then = time.time() - 7200
    claim_path = store.claim_path(victim)
    info = json.loads(claim_path.read_text(encoding="utf-8"))
    info["claimed_at"] = then
    info["last_seen"] = then
    claim_path.write_text(json.dumps(info), encoding="utf-8")

    # A healthy worker's normal poll requeues the stale claim and runs
    # the whole group to completion — same bits as the calm fleet.
    rescuer = Worker(store, worker_id="rescue-worker", stale_after=60.0)
    rescuer.run_once()
    assert _snapshot(store, jobs) == reference


def test_degraded_solo_when_peer_fails(tmp_path):
    """A failed sender flips its receivers to sticky solo continuation."""
    store = JobStore(tmp_path / "store")
    jobs = _submit_group(store)

    # Island 1 dies outright before ever publishing.
    victim = store.get(jobs[1].job_id)
    assert store.claim(victim.job_id, owner="crash-worker")
    store.mark_running(victim)
    store.mark_failed(victim, "simulated crash")
    store.release(victim.job_id)

    worker = Worker(store, worker_id="solo-worker")
    worker.run_once()

    survivor = store.get(jobs[0].job_id)
    assert survivor.status == "completed"
    island = survivor.result.extras["island"]
    assert island["degraded"] is True
    assert island["injected"] == 0  # nothing ever arrived

    # The merge job cannot consolidate a group with a dead member: it
    # fails loudly instead of publishing a half-group front.
    merge = store.get(jobs[-1].job_id)
    assert merge.status == "failed"
    assert jobs[1].job_id in merge.error


def test_wait_timeout_degrades_but_merge_survives(tmp_path, monkeypatch):
    """A silent (not failed) peer degrades the waiter after the timeout;
    once the peer does finish, the merge consolidates the full group and
    reports who ran solo."""
    monkeypatch.setenv("REPRO_ISLAND_WAIT_TIMEOUT", "0.01")
    monkeypatch.setenv("REPRO_ISLAND_GRACE", "0.0")
    store = JobStore(tmp_path / "store")
    jobs = _submit_group(store)

    worker = Worker(store, worker_id="impatient-worker")
    # First visit: island 0 publishes round 1, finds island 1 silent,
    # parks (the timeout clock starts at the first unfulfilled wait).
    outcome = worker.process(store.get(jobs[0].job_id))
    assert outcome is not None and outcome.parked is not None
    time.sleep(0.05)
    # Second visit: still silent, past the timeout — degrade and run
    # the rest of the search solo.
    outcome = worker.process(store.get(jobs[0].job_id))
    assert outcome is not None and outcome.parked is None
    survivor = store.get(jobs[0].job_id)
    assert survivor.status == "completed"
    assert survivor.result.extras["island"]["degraded"] is True

    # The slow peer and the merge still finish; the merged front names
    # the degraded member rather than hiding it.
    worker.run_once()
    merge = store.get(jobs[-1].job_id)
    assert merge.status == "completed"
    info = merge.result.extras["island"]
    assert info["degraded_members"] == [0]
    assert info["front"]


@pytest.mark.stress
def test_island_churn_battery(tmp_path):
    """N workers + violent claim churn still converge to the reference.

    ``recover_stale_claims(0.0)`` treats *every* held claim as dead, so
    running it on a timer while three workers drive a four-island group
    forces mid-run requeues, duplicate executions, and parked records
    yanked back to queued — the island exchange protocol (first-write-
    wins rounds, pre-injection checkpoints, pure injection plans) must
    absorb all of it without changing a single score.
    """
    base = ProtectionJob(dataset="flare", generations=3, seed=23)

    calm_store = JobStore(tmp_path / "calm")
    calm_jobs = _submit_group(calm_store, islands=4, base=base)
    Worker(calm_store, worker_id="calm-worker").run_once()
    expected = _snapshot(calm_store, calm_jobs)

    store = JobStore(tmp_path / "churn")
    jobs = _submit_group(store, islands=4, base=base)
    stop_churn = threading.Event()

    def churn() -> None:
        while not stop_churn.is_set():
            store.recover_stale_claims(0.0)
            time.sleep(0.25)

    churner = threading.Thread(target=churn, daemon=True)
    churner.start()
    try:
        _drive_with_threads(store, 3)
    finally:
        stop_churn.set()
        churner.join(timeout=10)

    # A requeue that landed after the fleet drained leaves a queued
    # record behind; one calm pass settles it (idempotently) before
    # the comparison.
    Worker(store, worker_id="settle-worker").run_once()
    assert _snapshot(store, jobs) == expected
