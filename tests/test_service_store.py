"""Job store lifecycle: records, transitions, idempotent submission."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.service import JobRecord, JobResult, JobStore, ProtectionJob


def _job(seed: int = 1) -> ProtectionJob:
    return ProtectionJob(dataset="adult", generations=5, seed=seed)


def _result(job: ProtectionJob) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        dataset=job.dataset,
        seed=job.seed,
        generations=job.generations,
        best_score=1.0,
        best_information_loss=1.0,
        best_disclosure_risk=1.0,
        final_scores=(1.0, 2.0),
        mean_improvement_percent=5.0,
        fresh_evaluations=10,
        memo_hits=1,
        persistent_hits=0,
        wall_seconds=0.1,
    )


class TestJobStore:
    def test_layout_created(self, tmp_path):
        store = JobStore(tmp_path / "state")
        assert store.jobs_dir.is_dir()
        assert store.checkpoints_dir.is_dir()
        assert store.cache_path.parent.is_dir()

    def test_submit_and_get(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        assert record.status == "queued"
        loaded = store.get(record.job_id)
        assert loaded.job == record.job
        assert loaded.submitted_at == pytest.approx(record.submitted_at)

    def test_lifecycle_transitions(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        store.mark_running(record)
        assert store.get(record.job_id).status == "running"
        store.mark_completed(record, _result(record.job))
        loaded = store.get(record.job_id)
        assert loaded.status == "completed"
        assert loaded.result is not None
        assert loaded.result.final_scores == (1.0, 2.0)

    def test_failed_records_error(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        store.mark_failed(record, "worker exploded")
        assert store.get(record.job_id).error == "worker exploded"

    def test_resubmit_completed_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        store.mark_completed(record, _result(record.job))
        again = store.submit(_job())
        assert again.status == "completed"
        assert again.result is not None

    def test_resubmit_running_returns_existing(self, tmp_path):
        # Regression: resubmitting a running job used to reset it to
        # queued, clobbering started_at and orphaning the live worker.
        store = JobStore(tmp_path)
        record = store.submit(_job())
        store.mark_running(record)
        started_at = store.get(record.job_id).started_at
        again = store.submit(_job())
        assert again.status == "running"
        assert again.started_at == pytest.approx(started_at)
        assert store.get(record.job_id).status == "running"

    def test_resubmit_queued_returns_existing(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        again = store.submit(_job())
        assert again.status == "queued"
        assert again.submitted_at == pytest.approx(record.submitted_at)

    def test_resubmit_failed_requeues(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(_job())
        store.mark_failed(record, "boom")
        again = store.submit(_job())
        assert again.status == "queued" and again.error == ""

    def test_records_sorted_by_submission(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(_job(1))
        second = store.submit(_job(2))
        # Force distinct, ordered timestamps regardless of clock resolution.
        first.submitted_at, second.submitted_at = 100.0, 200.0
        store.save(first)
        store.save(second)
        assert [r.job_id for r in store.records()] == [first.job_id, second.job_id]

    def test_get_unknown_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ServiceError, match="unknown job"):
            store.get("nope")
        assert store.get("nope", missing_ok=True) is None

    def test_bad_status_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(job=_job(), status="exploded")
        with pytest.raises(ServiceError):
            store.save(record)

    def test_record_dict_roundtrip(self, tmp_path):
        record = JobRecord(job=_job(), status="queued", submitted_at=1.0,
                           extras={"checkpoint_every": 5})
        back = JobRecord.from_dict(record.to_dict())
        assert back.job == record.job
        assert back.extras == {"checkpoint_every": 5}
