"""Unit tests for PRAM and invariant PRAM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtectionError
from repro.methods import (
    InvariantPram,
    Pram,
    apply_transition_matrix,
    basic_transition_matrix,
    invariant_transition_matrix,
)


class TestBasicMatrix:
    def test_rows_sum_to_one(self):
        counts = np.array([10, 5, 1, 0])
        matrix = basic_transition_matrix(counts, theta=0.3)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_diagonal_is_one_minus_theta(self):
        matrix = basic_transition_matrix(np.array([4, 4, 4]), theta=0.25)
        np.testing.assert_allclose(np.diag(matrix), 0.75)

    def test_off_diagonal_proportional_to_frequency(self):
        counts = np.array([100, 50, 10])
        matrix = basic_transition_matrix(counts, theta=0.5)
        # From category 2, transitions to 0 should outnumber transitions to 1.
        assert matrix[2, 0] > matrix[2, 1]

    def test_single_category(self):
        matrix = basic_transition_matrix(np.array([7]), theta=0.2)
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 1.0

    @pytest.mark.parametrize("theta", [0.0, 1.0, -0.5])
    def test_bad_theta(self, theta):
        with pytest.raises(ProtectionError):
            basic_transition_matrix(np.array([1, 2]), theta=theta)

    def test_zero_frequencies_smoothed(self):
        matrix = basic_transition_matrix(np.array([0, 0, 0]), theta=0.4)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        assert (matrix >= 0).all()


class TestInvariantMatrix:
    def test_rows_sum_to_one(self):
        matrix = invariant_transition_matrix(np.array([30, 20, 10, 5]), theta=0.3)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_invariance_property(self):
        """p R = p for the smoothed marginal p — the defining property."""
        counts = np.array([30, 20, 10, 5], dtype=float)
        p = (counts + 1) / (counts.sum() + counts.size)
        matrix = invariant_transition_matrix(counts, theta=0.3)
        np.testing.assert_allclose(p @ matrix, p, atol=1e-10)

    def test_single_category(self):
        assert invariant_transition_matrix(np.array([5]), theta=0.2).tolist() == [[1.0]]


class TestApplyMatrix:
    def test_identity_matrix_is_noop(self):
        values = np.array([0, 1, 2, 1])
        out = apply_transition_matrix(values, np.eye(3), np.random.default_rng(0))
        assert np.array_equal(out, values)

    def test_values_out_of_range_rejected(self):
        with pytest.raises(ProtectionError):
            apply_transition_matrix(np.array([5]), np.eye(3), np.random.default_rng(0))

    def test_non_square_rejected(self):
        with pytest.raises(ProtectionError):
            apply_transition_matrix(np.array([0]), np.ones((2, 3)), np.random.default_rng(0))

    def test_transition_frequencies_match_matrix(self):
        rng = np.random.default_rng(42)
        matrix = basic_transition_matrix(np.array([50, 30, 20]), theta=0.4)
        values = np.zeros(30000, dtype=np.int64)
        out = apply_transition_matrix(values, matrix, rng)
        observed = np.bincount(out, minlength=3) / 30000
        np.testing.assert_allclose(observed, matrix[0], atol=0.02)


class TestPramMethods:
    def test_change_rate_tracks_theta(self, adult):
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        low = Pram(theta=0.05).protect(adult, attrs, seed=0)
        high = Pram(theta=0.5).protect(adult, attrs, seed=0)
        assert adult.cells_changed(high) > adult.cells_changed(low)

    def test_expected_change_rate(self, adult):
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        masked = Pram(theta=0.2).protect(adult, attrs, seed=1)
        rate = adult.cells_changed(masked) / (adult.n_records * len(attrs))
        assert 0.15 <= rate <= 0.25

    def test_invariant_pram_preserves_marginals_approximately(self, adult):
        attrs = ("EDUCATION",)
        masked = InvariantPram(theta=0.3).protect(adult, attrs, seed=5)
        original_freq = adult.value_counts("EDUCATION") / adult.n_records
        masked_freq = masked.value_counts("EDUCATION") / adult.n_records
        # Invariant PRAM preserves marginals in expectation; at n=1000 the
        # realized drift should be small.
        assert np.abs(original_freq - masked_freq).max() < 0.05

    def test_seed_reproducible(self, adult):
        a = Pram(theta=0.2).protect(adult, ("EDUCATION",), seed=3)
        b = Pram(theta=0.2).protect(adult, ("EDUCATION",), seed=3)
        assert a.equals(b)

    @pytest.mark.parametrize("theta", [0.0, 1.0])
    def test_bad_theta(self, theta):
        with pytest.raises(ProtectionError):
            Pram(theta=theta)

    def test_describe(self):
        assert Pram(theta=0.2).describe() == "pram(theta=0.2)"
        assert InvariantPram(theta=0.2).describe() == "ipram(theta=0.2)"
