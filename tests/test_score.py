"""Unit tests for the score aggregation functions (paper Eqs. 1-2)."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics import (
    MaxScore,
    MeanScore,
    PowerMeanScore,
    WeightedScore,
    score_function_by_name,
)


class TestMeanScore:
    def test_equation1(self):
        assert MeanScore()(20.0, 40.0) == 30.0

    def test_permits_perfect_tradeoff(self):
        # The paper's criticism of Eq. 1: (0, 40) and (20, 20) tie.
        assert MeanScore()(0.0, 40.0) == MeanScore()(20.0, 20.0)


class TestMaxScore:
    def test_equation2(self):
        assert MaxScore()(20.0, 40.0) == 40.0

    def test_penalizes_imbalance(self):
        # The paper's motivation for Eq. 2: the unbalanced pair loses.
        assert MaxScore()(0.0, 40.0) > MaxScore()(20.0, 20.0)

    def test_symmetric(self):
        assert MaxScore()(40.0, 20.0) == MaxScore()(20.0, 40.0)


class TestWeightedScore:
    def test_weights(self):
        assert WeightedScore(0.75)(40.0, 20.0) == pytest.approx(35.0)

    def test_half_weight_equals_mean(self):
        assert WeightedScore(0.5)(13.0, 29.0) == MeanScore()(13.0, 29.0)

    @pytest.mark.parametrize("weight", [-0.1, 1.1])
    def test_bad_weight(self, weight):
        with pytest.raises(MetricError):
            WeightedScore(weight)


class TestPowerMeanScore:
    def test_exponent_one_is_mean(self):
        assert PowerMeanScore(1.0)(10.0, 30.0) == pytest.approx(20.0)

    def test_large_exponent_approaches_max(self):
        assert PowerMeanScore(64.0)(10.0, 30.0) == pytest.approx(30.0, rel=0.05)

    def test_between_mean_and_max(self):
        value = PowerMeanScore(4.0)(10.0, 30.0)
        assert 20.0 < value < 30.0

    def test_bad_exponent(self):
        with pytest.raises(MetricError):
            PowerMeanScore(0.5)


class TestLookup:
    @pytest.mark.parametrize("name,cls", [("mean", MeanScore), ("max", MaxScore),
                                           ("weighted", WeightedScore), ("power_mean", PowerMeanScore)])
    def test_by_name(self, name, cls):
        assert isinstance(score_function_by_name(name), cls)

    def test_unknown_name(self):
        with pytest.raises(MetricError):
            score_function_by_name("geometric")
