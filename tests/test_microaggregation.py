"""Unit tests for categorical microaggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtectionError
from repro.methods import Microaggregation
from repro.methods.microaggregation import _aggregate, _group_boundaries


class TestGroupBoundaries:
    def test_exact_multiple(self):
        assert _group_boundaries(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_absorbed_by_last_group(self):
        boundaries = _group_boundaries(10, 3)
        assert boundaries == [(0, 3), (3, 6), (6, 10)]
        assert all(stop - start >= 3 for start, stop in boundaries)

    def test_fewer_records_than_k(self):
        assert _group_boundaries(2, 5) == [(0, 2)]

    def test_every_record_covered_once(self):
        boundaries = _group_boundaries(23, 4)
        covered = [i for start, stop in boundaries for i in range(start, stop)]
        assert covered == list(range(23))


class TestAggregate:
    def test_ordinal_median(self):
        assert _aggregate(np.array([1, 2, 9]), ordinal=True) == 2

    def test_nominal_mode(self):
        assert _aggregate(np.array([3, 3, 1, 2]), ordinal=False) == 3

    def test_nominal_mode_tie_lowest_code(self):
        assert _aggregate(np.array([2, 1, 1, 2]), ordinal=False) == 1


class TestMicroaggregation:
    def test_k_validation(self):
        with pytest.raises(ProtectionError):
            Microaggregation(k=1)

    def test_strategy_validation(self):
        with pytest.raises(ProtectionError):
            Microaggregation(strategy="cosmic")

    def test_groups_have_at_least_k_identical_values(self, adult):
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        masked = Microaggregation(k=5).protect(adult, attrs)
        for attribute in attrs:
            counts = masked.value_counts(attribute)
            used = counts[counts > 0]
            # Every published category must cover at least k records
            # (groups may merge onto the same aggregate, only growing them).
            assert used.min() >= 5

    def test_larger_k_coarser(self, adult):
        attrs = ("EDUCATION",)
        small_k = Microaggregation(k=2).protect(adult, attrs)
        large_k = Microaggregation(k=50).protect(adult, attrs)
        distinct_small = (small_k.value_counts("EDUCATION") > 0).sum()
        distinct_large = (large_k.value_counts("EDUCATION") > 0).sum()
        assert distinct_large <= distinct_small

    def test_untouched_attributes_identical(self, adult):
        masked = Microaggregation(k=3).protect(adult, ("EDUCATION",))
        for attribute in adult.attribute_names:
            if attribute == "EDUCATION":
                continue
            assert np.array_equal(masked.column(attribute), adult.column(attribute))

    def test_deterministic(self, adult):
        attrs = ("EDUCATION", "OCCUPATION")
        a = Microaggregation(k=4).protect(adult, attrs)
        b = Microaggregation(k=4).protect(adult, attrs)
        assert a.equals(b)

    def test_joint_needs_sort_attributes(self, adult):
        method = Microaggregation(k=3, strategy="joint")
        with pytest.raises(ProtectionError, match="sort_attributes"):
            method.protect(adult, ("EDUCATION",))

    def test_joint_strategy_runs(self, adult):
        attrs = ("EDUCATION", "MARITAL-STATUS")
        method = Microaggregation(k=3, strategy="joint", sort_attributes=attrs)
        masked = method.protect(adult, attrs)
        assert masked.n_records == adult.n_records
        assert adult.cells_changed(masked) > 0

    def test_joint_and_univariate_differ(self, adult):
        attrs = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")
        univariate = Microaggregation(k=5).protect(adult, attrs)
        joint = Microaggregation(k=5, strategy="joint", sort_attributes=attrs).protect(adult, attrs)
        assert not univariate.equals(joint)

    def test_describe(self):
        assert Microaggregation(k=3).describe() == "microagg(k=3,univariate)"
