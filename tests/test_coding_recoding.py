"""Unit tests for top/bottom coding, global recoding and suppression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtectionError
from repro.hierarchy import fanout_hierarchy
from repro.methods import BottomCoding, GlobalRecoding, LocalSuppression, TopCoding


class TestTopCoding:
    def test_collapses_top_categories(self, adult):
        masked = TopCoding(fraction=0.25).protect(adult, ("EDUCATION",))
        domain_size = adult.domain("EDUCATION").size
        collapsed = max(1, min(domain_size - 1, round(domain_size * 0.25)))
        cutoff = domain_size - 1 - collapsed
        assert masked.column("EDUCATION").max() <= cutoff

    def test_values_below_cutoff_untouched(self, adult):
        masked = TopCoding(fraction=0.25).protect(adult, ("EDUCATION",))
        cutoff = masked.column("EDUCATION").max()
        below = adult.column("EDUCATION") < cutoff
        assert np.array_equal(
            masked.column("EDUCATION")[below], adult.column("EDUCATION")[below]
        )

    def test_monotone_in_fraction(self, adult):
        mild = TopCoding(fraction=0.1).protect(adult, ("EDUCATION",))
        strong = TopCoding(fraction=0.5).protect(adult, ("EDUCATION",))
        assert adult.cells_changed(strong) >= adult.cells_changed(mild)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2])
    def test_bad_fraction(self, fraction):
        with pytest.raises(ProtectionError):
            TopCoding(fraction=fraction)


class TestBottomCoding:
    def test_collapses_bottom_categories(self, adult):
        masked = BottomCoding(fraction=0.25).protect(adult, ("EDUCATION",))
        assert masked.column("EDUCATION").min() >= 1

    def test_values_above_cutoff_untouched(self, adult):
        masked = BottomCoding(fraction=0.25).protect(adult, ("EDUCATION",))
        cutoff = masked.column("EDUCATION").min()
        above = adult.column("EDUCATION") > cutoff
        assert np.array_equal(
            masked.column("EDUCATION")[above], adult.column("EDUCATION")[above]
        )

    def test_top_and_bottom_are_mirrors(self, adult):
        top = TopCoding(fraction=0.2).protect(adult, ("EDUCATION",))
        bottom = BottomCoding(fraction=0.2).protect(adult, ("EDUCATION",))
        size = adult.domain("EDUCATION").size
        mirrored = (size - 1) - top.column("EDUCATION")
        original_mirrored = (size - 1) - adult.column("EDUCATION")
        # Bottom-coding the mirrored data equals mirroring the top-coded data.
        changed_top = (top.column("EDUCATION") != adult.column("EDUCATION")).sum()
        changed_bottom = (bottom.column("EDUCATION") != adult.column("EDUCATION")).sum()
        assert mirrored.min() >= 0 and original_mirrored.min() >= 0
        # Not exactly equal counts (distribution is skewed) but both collapse
        # the same number of categories.
        collapsed_top = size - len(np.unique(top.column("EDUCATION")))
        collapsed_bottom = size - len(np.unique(bottom.column("EDUCATION")))
        assert abs(collapsed_top - collapsed_bottom) <= int(changed_top >= 0) + 3


class TestGlobalRecoding:
    def test_reduces_distinct_categories(self, adult):
        masked = GlobalRecoding(level=1).protect(adult, ("EDUCATION",))
        distinct_original = (adult.value_counts("EDUCATION") > 0).sum()
        distinct_masked = (masked.value_counts("EDUCATION") > 0).sum()
        assert distinct_masked < distinct_original

    def test_higher_level_coarser(self, adult):
        level1 = GlobalRecoding(level=1).protect(adult, ("EDUCATION",))
        level3 = GlobalRecoding(level=3).protect(adult, ("EDUCATION",))
        d1 = (level1.value_counts("EDUCATION") > 0).sum()
        d3 = (level3.value_counts("EDUCATION") > 0).sum()
        assert d3 <= d1

    def test_level_beyond_top_collapses_to_one(self, adult):
        masked = GlobalRecoding(level=99).protect(adult, ("EDUCATION",))
        assert (masked.value_counts("EDUCATION") > 0).sum() == 1

    def test_representative_stays_in_group(self, adult):
        hierarchy = fanout_hierarchy(adult.domain("EDUCATION"), fanout=2)
        masked = GlobalRecoding(level=1, representative="first").protect(adult, ("EDUCATION",))
        groups_of = hierarchy.group_of(1)
        # Each masked value must be in the same level-1 group as its original.
        assert np.array_equal(
            groups_of[masked.column("EDUCATION")], groups_of[adult.column("EDUCATION")]
        )

    def test_mode_representative_is_group_mode(self, adult):
        hierarchy = fanout_hierarchy(adult.domain("EDUCATION"), fanout=2)
        masked = GlobalRecoding(level=1, representative="mode").protect(adult, ("EDUCATION",))
        counts = adult.value_counts("EDUCATION")
        for group in range(hierarchy.n_groups(1)):
            members = hierarchy.members(1, group)
            expected = members[int(np.argmax(counts[members]))]
            rows = np.isin(adult.column("EDUCATION"), members)
            if rows.any():
                assert (masked.column("EDUCATION")[rows] == expected).all()

    def test_explicit_hierarchy_domain_checked(self, adult, tiny_dataset):
        bad = fanout_hierarchy(tiny_dataset.domain("SIZE").renamed("EDUCATION"))
        method = GlobalRecoding(level=1, hierarchies={"EDUCATION": bad})
        with pytest.raises(ProtectionError, match="different domain"):
            method.protect(adult, ("EDUCATION",))

    @pytest.mark.parametrize("kwargs", [{"level": 0}, {"representative": "oracle"}, {"fanout": 1}])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ProtectionError):
            GlobalRecoding(**kwargs)


class TestLocalSuppression:
    def test_suppressed_cells_become_mode(self, adult):
        masked = LocalSuppression(fraction=0.2, target="random").protect(
            adult, ("EDUCATION",), seed=0
        )
        mode = int(np.argmax(adult.value_counts("EDUCATION")))
        changed = masked.column("EDUCATION") != adult.column("EDUCATION")
        assert (masked.column("EDUCATION")[changed] == mode).all()

    def test_rarest_first_targets_rare_values(self, adult):
        masked = LocalSuppression(fraction=0.1, target="rarest").protect(
            adult, ("EDUCATION",), seed=0
        )
        counts = adult.value_counts("EDUCATION")
        changed = masked.column("EDUCATION") != adult.column("EDUCATION")
        if changed.any():
            changed_freq = counts[adult.column("EDUCATION")[changed]].mean()
            overall_freq = counts[adult.column("EDUCATION")].mean()
            assert changed_freq < overall_freq

    def test_fraction_controls_volume(self, adult):
        mild = LocalSuppression(fraction=0.05).protect(adult, ("EDUCATION",), seed=1)
        strong = LocalSuppression(fraction=0.5).protect(adult, ("EDUCATION",), seed=1)
        assert adult.cells_changed(strong) >= adult.cells_changed(mild)

    @pytest.mark.parametrize("kwargs", [{"fraction": 0}, {"fraction": 1.5}, {"target": "x"}])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ProtectionError):
            LocalSuppression(**kwargs)
