"""Unit tests for the paper's initial-population builder."""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset, protected_attributes
from repro.exceptions import ExperimentError
from repro.experiments import PAPER_MIXES, PopulationMix, build_initial_population, build_method_suite


class TestPaperMixes:
    """The paper's §3 population counts, pinned exactly."""

    @pytest.mark.parametrize(
        "name,total", [("housing", 110), ("german", 104), ("flare", 104), ("adult", 86)]
    )
    def test_totals(self, name, total):
        assert PAPER_MIXES[name].total == total

    def test_housing_breakdown(self):
        mix = PAPER_MIXES["housing"]
        assert (mix.microaggregation, mix.bottom_coding, mix.top_coding,
                mix.global_recoding, mix.rank_swapping, mix.pram) == (72, 6, 6, 6, 11, 9)

    def test_adult_breakdown(self):
        mix = PAPER_MIXES["adult"]
        assert (mix.microaggregation, mix.bottom_coding, mix.top_coding,
                mix.global_recoding, mix.rank_swapping, mix.pram) == (48, 6, 6, 6, 11, 9)


class TestMethodSuite:
    def test_suite_counts_match_mix(self):
        attrs = protected_attributes("flare")
        mix = PAPER_MIXES["flare"]
        suite = build_method_suite(attrs, mix)
        assert len(suite) == mix.total
        by_family = {}
        for method in suite:
            by_family[method.method_name] = by_family.get(method.method_name, 0) + 1
        assert by_family["microaggregation"] == 72
        assert by_family["bottom_coding"] == 4
        assert by_family["top_coding"] == 4
        assert by_family["global_recoding"] == 4
        assert by_family["rank_swapping"] == 11
        assert by_family["pram"] + by_family["invariant_pram"] == 9

    def test_microaggregation_grid_balanced(self):
        attrs = protected_attributes("adult")
        suite = build_method_suite(attrs, PopulationMix(48, 0, 0, 0, 0, 0))
        ks = sorted({m.k for m in suite})
        assert ks == list(range(2, 10))  # 8 k-values x 6 variants = 48
        per_k = [sum(1 for m in suite if m.k == k) for k in ks]
        assert per_k == [6] * 8

    def test_configurations_distinct(self):
        attrs = protected_attributes("flare")
        suite = build_method_suite(attrs, PAPER_MIXES["flare"])
        descriptions = [(m.method_name, m.describe(), getattr(m, "sort_attributes", None))
                        for m in suite]
        assert len(set(map(str, descriptions))) == len(descriptions)


class TestBuildPopulation:
    @pytest.mark.parametrize("name", ["adult"])  # one full build is enough; others covered by mixes
    def test_full_paper_population(self, name):
        original = load_dataset(name)
        protections = build_initial_population(original, dataset_name=name, seed=0)
        assert len(protections) == PAPER_MIXES[name].total
        for masked in protections:
            original.require_compatible(masked)

    def test_population_deterministic(self, adult):
        a = build_initial_population(adult, dataset_name="adult", seed=5)
        b = build_initial_population(adult, dataset_name="adult", seed=5)
        assert all(x.equals(y) for x, y in zip(a, b))

    def test_population_varies_with_seed(self, adult):
        a = build_initial_population(adult, dataset_name="adult", seed=1)
        b = build_initial_population(adult, dataset_name="adult", seed=2)
        assert any(not x.equals(y) for x, y in zip(a, b))

    def test_explicit_attributes_and_mix(self, adult):
        mix = PopulationMix(4, 1, 1, 1, 2, 2)
        protections = build_initial_population(
            adult, attributes=["EDUCATION", "OCCUPATION"], mix=mix, seed=0
        )
        assert len(protections) == mix.total

    def test_requires_dataset_or_attributes(self, adult):
        with pytest.raises(ExperimentError):
            build_initial_population(adult)

    def test_unknown_dataset_name(self, adult):
        with pytest.raises(ExperimentError):
            build_initial_population(adult, dataset_name="mars")

    def test_protection_names_unique(self, adult):
        protections = build_initial_population(adult, dataset_name="adult", seed=0)
        names = [p.name for p in protections]
        assert len(set(names)) == len(names)
