"""CLI over the sqlite store: --store sqlite:PATH end to end.

Drives ``repro`` exactly as an operator would run an sqlite-backed
fleet: detached submission, workers, status, kill-and-resume (bit
identical), ``repro serve --backend sqlite`` with remote clients, and
``repro migrate`` between a file state directory and a database.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import (
    JobStore,
    JobStoreServer,
    ProtectionJob,
    SqliteJobStore,
)


def _spec(tmp_path) -> str:
    return f"sqlite:{tmp_path / 'state' / 'jobs.sqlite'}"


def _store(tmp_path) -> SqliteJobStore:
    return SqliteJobStore(tmp_path / "state" / "jobs.sqlite")


class TestSubmitWorkerStatus:
    def test_detached_submit_queues_in_the_database(self, tmp_path, capsys):
        assert main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seeds", "31,32", "--checkpoint-every", "0", "--detach",
                     "--store", _spec(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "queued 2 job(s)" in out
        assert f"--store {_spec(tmp_path)}" in out  # the worker hint
        store = _store(tmp_path)
        assert [r.status for r in store.records()] == ["queued", "queued"]

    def test_worker_once_drains_the_database_queue(self, tmp_path, capsys):
        assert main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seeds", "31,32", "--checkpoint-every", "0", "--detach",
                     "--store", _spec(tmp_path)]) == 0
        assert main(["worker", "--once", "--no-cache",
                     "--store", _spec(tmp_path)]) == 0
        assert "ran 2 job(s)" in capsys.readouterr().out
        store = _store(tmp_path)
        assert [r.status for r in store.records()] == ["completed", "completed"]
        assert store.claimed_job_ids() == []

    def test_status_reads_the_database(self, tmp_path, capsys):
        record = _store(tmp_path).submit(
            ProtectionJob(dataset="adult", generations=1, seed=5)
        )
        assert main(["status", "--store", _spec(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert record.job_id in out
        assert _spec(tmp_path) in out  # the table is titled by the spec

    def test_inline_submit_runs_against_sqlite(self, tmp_path, capsys):
        assert main(["submit", "--dataset", "adult", "--generations", "1",
                     "--seed", "8", "--checkpoint-every", "0", "--no-cache",
                     "--store", _spec(tmp_path)]) == 0
        job_id = ProtectionJob(dataset="adult", generations=1, seed=8).job_id
        assert _store(tmp_path).get(job_id).status == "completed"


class TestResumeAfterKill:
    def test_resume_continues_bit_identically_after_a_worker_kill(
        self, tmp_path, capsys
    ):
        # Run a checkpointed job to completion for the reference result,
        # then "kill" the worker after its last checkpoint: the record
        # crashes back to running, the result is gone, only the
        # checkpoint blob in the database survives.  `repro resume
        # --store sqlite:` must finish it bit-identically.
        spec = _spec(tmp_path)
        assert main(["submit", "--dataset", "adult", "--generations", "3",
                     "--seed", "63", "--checkpoint-every", "2",
                     "--store", spec]) == 0
        job_id = ProtectionJob(dataset="adult", generations=3, seed=63).job_id
        store = _store(tmp_path)
        straight = store.get(job_id).result
        assert straight is not None
        assert store.get_checkpoint(job_id) is not None

        crashed = store.get(job_id)
        crashed.status = "running"
        crashed.result = None
        store.save(crashed)
        # A killed worker's local checkpoint file is gone too — resume
        # must restore it from the database blob when it claims.
        store.checkpoint_path(job_id).unlink()
        capsys.readouterr()

        assert main(["resume", "--job", job_id, "--store", spec]) == 0
        resumed = _store(tmp_path).get(job_id)
        assert resumed.status == "completed"
        assert resumed.result.final_scores == straight.final_scores
        assert resumed.result.best_score == straight.best_score
        assert resumed.result.best_information_loss == straight.best_information_loss
        assert resumed.result.best_disclosure_risk == straight.best_disclosure_risk
        # It continued from the checkpoint, not from scratch.
        assert resumed.result.fresh_evaluations < straight.fresh_evaluations
        assert _store(tmp_path).claimed_job_ids() == []


class TestServeSqliteBackend:
    def test_remote_workers_drain_a_served_database(self, tmp_path, capsys):
        backing = _store(tmp_path)
        with JobStoreServer(backing, token="sql-tok") as server:
            assert main(["submit", "--dataset", "adult", "--generations", "1",
                         "--seed", "21", "--checkpoint-every", "0", "--detach",
                         "--store-url", server.url, "--token", "sql-tok",
                         "--state-dir", str(tmp_path / "spool-a")]) == 0
            assert main(["worker", "--once", "--no-cache",
                         "--store-url", server.url, "--token", "sql-tok",
                         "--state-dir", str(tmp_path / "spool-b")]) == 0
        job_id = ProtectionJob(dataset="adult", generations=1, seed=21).job_id
        assert backing.get(job_id).status == "completed"
        assert backing.claimed_job_ids() == []

    def test_serve_sqlite_defaults_db_into_the_state_dir(self, tmp_path,
                                                         capsys, monkeypatch):
        # Regression: without --db, the database must land in
        # --state-dir (as the --db help text promises), not in the
        # global $REPRO_HOME default.
        monkeypatch.setattr(
            "repro.service.netstore.JobStoreServer.serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        assert main(["serve", "--port", "0", "--token", "t",
                     "--backend", "sqlite",
                     "--state-dir", str(tmp_path / "fleet")]) == 0
        out = capsys.readouterr().out
        assert f"sqlite:{tmp_path / 'fleet' / 'jobs.sqlite'}" in out
        assert (tmp_path / "fleet" / "jobs.sqlite").exists()

    def test_serve_rejects_db_with_file_backend(self, tmp_path, capsys):
        code = main(["serve", "--backend", "file",
                     "--db", str(tmp_path / "jobs.sqlite")])
        assert code == 2
        assert "--backend sqlite" in capsys.readouterr().err


class TestMigrateCommand:
    def test_migrate_file_store_to_database_and_back(self, tmp_path, capsys):
        source = JobStore(tmp_path / "dir")
        record = source.submit(ProtectionJob(dataset="adult", generations=1,
                                             seed=3))
        source.put_checkpoint(record.job_id, {"generation": 1})
        db_spec = f"sqlite:{tmp_path / 'db' / 'jobs.sqlite'}"

        assert main(["migrate", "--from", f"file:{tmp_path / 'dir'}",
                     "--to", db_spec]) == 0
        out = capsys.readouterr().out
        assert "migrated 1 job record(s), 1 checkpoint(s), 0 trace(s) and 0 migrant blob(s)" in out
        migrated = SqliteJobStore(tmp_path / "db" / "jobs.sqlite")
        assert migrated.get(record.job_id).status == "queued"
        assert migrated.get_checkpoint(record.job_id) == {"generation": 1}

        assert main(["migrate", "--from", db_spec,
                     "--to", f"file:{tmp_path / 'back'}"]) == 0
        returned = JobStore(tmp_path / "back")
        assert returned.get(record.job_id).status == "queued"
        assert returned.get_checkpoint(record.job_id) == {"generation": 1}

    def test_migrate_refuses_identical_specs(self, tmp_path, capsys):
        spec = _spec(tmp_path)
        assert main(["migrate", "--from", spec, "--to", spec]) == 2
        assert "different stores" in capsys.readouterr().err


class TestWorkerBackoffFlag:
    def test_poll_max_below_poll_seconds_rejected(self, tmp_path, capsys):
        code = main(["worker", "--poll-seconds", "2", "--poll-max", "1",
                     "--idle-exit", "1", "--store", _spec(tmp_path)])
        assert code == 2
        assert "poll_max" in capsys.readouterr().err

    def test_idle_worker_backs_off_and_exits(self, tmp_path, capsys):
        assert main(["worker", "--poll-seconds", "0.01", "--poll-max", "0.04",
                     "--idle-exit", "3", "--store", _spec(tmp_path)]) == 0
        assert "no claimable queued jobs" in capsys.readouterr().out


@pytest.fixture(autouse=True)
def _isolated_home(monkeypatch, tmp_path):
    # Every CLI invocation here must stay inside the test's tmp dir,
    # even where a default state dir would be consulted.
    monkeypatch.setenv("REPRO_HOME", str(tmp_path / "home"))
