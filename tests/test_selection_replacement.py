"""Unit tests for selection strategies and replacement policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Individual,
    Population,
    crowding_pairs,
    deterministic_crowding,
    elitist_survivor,
    select_index,
    select_leader,
    selection_probabilities,
)
from repro.exceptions import EvolutionError
from repro.metrics import ProtectionScore


def individual(dataset, score: float, origin: str = "initial") -> Individual:
    return Individual(dataset, ProtectionScore(score, score, score), origin=origin)


@pytest.fixture
def ranked_population(adult):
    """Five individuals with scores 10 < 20 < 30 < 40 < 50."""
    return Population([individual(adult, 10.0 * (i + 1)) for i in range(5)])


class TestSelectionProbabilities:
    def test_probabilities_sum_to_one(self):
        for strategy in ("proportional", "literal", "rank", "uniform"):
            probs = selection_probabilities(np.array([10.0, 20.0, 30.0]), strategy)
            assert probs.sum() == pytest.approx(1.0)

    def test_proportional_favours_low_scores(self):
        probs = selection_probabilities(np.array([10.0, 20.0, 30.0]), "proportional")
        assert probs[0] > probs[1] > probs[2]

    def test_literal_favours_high_scores(self):
        # Eq. 3 exactly as printed: worse scores get more probability.
        probs = selection_probabilities(np.array([10.0, 20.0, 30.0]), "literal")
        assert probs[2] > probs[1] > probs[0]

    def test_rank_insensitive_to_scale(self):
        a = selection_probabilities(np.array([1.0, 2.0, 3.0]), "rank")
        b = selection_probabilities(np.array([1.0, 2.0, 3000.0]), "rank")
        np.testing.assert_allclose(a, b)

    def test_uniform(self):
        probs = selection_probabilities(np.array([5.0, 50.0]), "uniform")
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_equal_scores_uniform_under_proportional(self):
        probs = selection_probabilities(np.array([7.0, 7.0, 7.0]), "proportional")
        np.testing.assert_allclose(probs, 1 / 3)

    def test_unknown_strategy(self):
        with pytest.raises(EvolutionError):
            selection_probabilities(np.array([1.0]), "tournament")

    def test_negative_scores_rejected(self):
        with pytest.raises(EvolutionError):
            selection_probabilities(np.array([-1.0]), "proportional")

    def test_empty_rejected(self):
        with pytest.raises(EvolutionError):
            selection_probabilities(np.array([]), "proportional")


class TestSelectIndex:
    def test_proportional_empirically_favours_best(self, ranked_population):
        rng = np.random.default_rng(0)
        draws = [select_index(ranked_population, "proportional", rng) for __ in range(2000)]
        counts = np.bincount(draws, minlength=5)
        assert counts[0] > counts[4]

    def test_selection_deterministic_given_rng_state(self, ranked_population):
        a = select_index(ranked_population, "proportional", np.random.default_rng(3))
        b = select_index(ranked_population, "proportional", np.random.default_rng(3))
        assert a == b


class TestSelectLeader:
    def test_leader_only_from_best(self, ranked_population):
        rng = np.random.default_rng(1)
        for __ in range(200):
            index = select_leader(ranked_population, leader_count=2, seed=rng)
            assert ranked_population[index].score in (10.0, 20.0)

    def test_leader_count_clamped(self, ranked_population):
        index = select_leader(ranked_population, leader_count=50, seed=0)
        assert 0 <= index < 5


class TestElitism:
    def test_better_child_survives(self, adult):
        parent, child = individual(adult, 30.0), individual(adult, 20.0)
        assert elitist_survivor(parent, child) is child

    def test_worse_child_dies(self, adult):
        parent, child = individual(adult, 20.0), individual(adult, 30.0)
        assert elitist_survivor(parent, child) is parent

    def test_tie_goes_to_child(self, adult):
        parent, child = individual(adult, 20.0), individual(adult, 20.0)
        assert elitist_survivor(parent, child) is child


class TestDeterministicCrowding:
    def test_index_pairing(self, adult):
        parents = (individual(adult, 10.0), individual(adult, 40.0))
        children = (individual(adult, 20.0), individual(adult, 30.0))
        pairs = crowding_pairs(parents, children, pairing="index")
        assert pairs == [(parents[0], children[0]), (parents[1], children[1])]

    def test_distance_pairing_minimizes_total_distance(self, adult):
        from repro.core import mutate

        ATTRS = ["EDUCATION"]
        near_parent0 = mutate(adult, ATTRS, seed=0)
        far = mutate(mutate(mutate(adult, ATTRS, seed=1), ATTRS, seed=2), ATTRS, seed=3)
        parents = (individual(adult, 10.0), individual(far, 40.0))
        # children[0] is far from parent 0 but identical to parent 1 and
        # children[1] is near parent 0: distance pairing must cross them.
        children = (individual(far, 20.0), individual(near_parent0, 30.0))
        pairs = crowding_pairs(parents, children, pairing="distance")
        assert pairs == [(parents[0], children[1]), (parents[1], children[0])]

    def test_survivors_best_of_each_pair(self, adult):
        parents = (individual(adult, 10.0), individual(adult, 40.0))
        children = (individual(adult, 20.0), individual(adult, 30.0))
        survivors = deterministic_crowding(parents, children, pairing="index")
        assert survivors[0] is parents[0]  # 10 beats 20
        assert survivors[1] is children[1]  # 30 beats 40

    def test_unknown_pairing(self, adult):
        parents = (individual(adult, 1.0), individual(adult, 2.0))
        with pytest.raises(ValueError):
            crowding_pairs(parents, parents, pairing="nearest")
