"""Batch-first evaluation: ``evaluate_many`` ≡ mapped ``evaluate``, exactly.

The batch protocol's contract is bit-identity: for every measure and
every score function, scoring a batch must return exactly what scoring
each candidate alone returns — same floats, same components — whatever
the batch composition, chunking, executor, or cache state.  These tests
pin that contract for every IL/DR measure, the full evaluator, the
batched Fellegi–Sunter EM, and the bulk cache surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDataset
from repro.linkage.prl import fit_fellegi_sunter, fit_fellegi_sunter_many
from repro.metrics.evaluation import (
    ProtectionEvaluator,
    default_dr_measures,
    default_il_measures,
)
from repro.metrics.score import score_function_by_name
from repro.service.backends import create_backend
from repro.service.cache import EvaluationCache

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


def random_maskings(original: CategoricalDataset, count: int, seed: int = 0,
                    flip_fraction: float = 0.2) -> list[CategoricalDataset]:
    """Valid random maskings: flip a fraction of protected cells."""
    rng = np.random.default_rng(seed)
    columns = [original.schema.index_of(a) for a in ATTRS]
    out = []
    for index in range(count):
        codes = original.codes_copy()
        for col in columns:
            size = original.schema.domain(col).size
            mask = rng.random(original.n_records) < flip_fraction
            codes[mask, col] = rng.integers(0, size, size=int(mask.sum()))
        out.append(original.with_codes(codes, name=f"mask-{index}"))
    return out


@pytest.fixture(scope="module")
def batch_data(request):
    adult = request.getfixturevalue("small_adult")
    return adult, random_maskings(adult, 12, seed=3)


ALL_MEASURES = ["ctbil", "dbil", "ebil", "interval_disclosure", "dbrl", "prl", "rsrl"]


def measures_by_name(original):
    stack = default_il_measures(original, ATTRS) + default_dr_measures(original, ATTRS)
    return {m.measure_name: m for m in stack}


class TestMeasureBatchEquivalence:
    @pytest.mark.parametrize("name", ALL_MEASURES)
    def test_batch_equals_mapped_scalar(self, batch_data, name):
        original, maskings = batch_data
        measure = measures_by_name(original)[name]
        scalar = np.array([measure.compute(m) for m in maskings])
        batch = measure.compute_many(maskings)
        assert batch.dtype == np.float64
        assert np.array_equal(scalar, batch), f"{name}: batch diverged from scalar"

    @pytest.mark.parametrize("name", ALL_MEASURES)
    def test_chunk_boundaries_do_not_matter(self, batch_data, name):
        original, maskings = batch_data
        measure = measures_by_name(original)[name]
        full = measure.compute_many(maskings)
        split = np.concatenate(
            [measure.compute_many(maskings[:5]), measure.compute_many(maskings[5:])]
        )
        assert np.array_equal(full, split), f"{name}: chunk-dependent results"

    @pytest.mark.parametrize("name", ALL_MEASURES)
    def test_empty_and_singleton(self, batch_data, name):
        original, maskings = batch_data
        measure = measures_by_name(original)[name]
        assert measure.compute_many([]).shape == (0,)
        single = measure.compute_many([maskings[0]])
        assert single.shape == (1,)
        assert single[0] == measure.compute(maskings[0])

    def test_identity_masking_extremes(self, batch_data):
        """The identity batch hits the documented endpoints, batched too."""
        original, __ = batch_data
        stack = measures_by_name(original)
        identity = [original.with_codes(original.codes_copy(), name="same")]
        assert stack["dbil"].compute_many(identity)[0] == 0.0
        assert stack["ctbil"].compute_many(identity)[0] == 0.0
        assert stack["interval_disclosure"].compute_many(identity)[0] == 100.0


class TestBatchEM:
    def test_batched_fit_is_row_independent(self):
        rng = np.random.default_rng(11)
        counts = rng.integers(0, 5000, size=(16, 8)).astype(np.float64)
        counts[:, 0] += 1  # never all-zero rows
        batch = fit_fellegi_sunter_many(counts, 3)
        for row in range(counts.shape[0]):
            single = fit_fellegi_sunter(counts[row], 3)
            assert np.array_equal(single.m, batch.m[row])
            assert np.array_equal(single.u, batch.u[row])
            assert single.match_proportion == batch.match_proportion[row]
            assert np.array_equal(single.pattern_weights, batch.pattern_weights[row])

    def test_shape_validation(self):
        from repro.exceptions import LinkageError

        with pytest.raises(LinkageError):
            fit_fellegi_sunter_many(np.ones((2, 7)), 3)
        with pytest.raises(LinkageError):
            fit_fellegi_sunter_many(np.zeros((2, 8)), 3)


class TestEvaluatorBatch:
    @pytest.mark.parametrize("score", ["mean", "max", "weighted", "power_mean"])
    def test_evaluate_many_equals_mapped_evaluate(self, batch_data, score):
        original, maskings = batch_data
        reference = ProtectionEvaluator(
            original, ATTRS, score_function=score_function_by_name(score)
        )
        batched = ProtectionEvaluator(
            original, ATTRS, score_function=score_function_by_name(score)
        )
        scalar_scores = [reference.evaluate(m) for m in maskings]
        batch_scores = batched.evaluate_many(maskings)
        assert batch_scores == scalar_scores  # frozen dataclass equality: exact

    def test_empty_batch(self, batch_data):
        original, __ = batch_data
        assert ProtectionEvaluator(original, ATTRS).evaluate_many([]) == []

    def test_all_duplicates_scored_once(self, batch_data):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        same = [maskings[0]] * 5
        scores = evaluator.evaluate_many(same)
        assert len(scores) == 5
        assert all(s == scores[0] for s in scores)
        assert evaluator.evaluations == 1
        assert evaluator.batch_dedup == 4
        # A distinct-content copy dedupes too (fingerprint, not identity).
        copy = original.with_codes(maskings[0].codes_copy(), name="copy")
        evaluator.evaluate_many([maskings[0], copy])
        assert evaluator.evaluations == 1  # memo hit, no fresh work
        assert evaluator.stats()["batch_dedup"] == 5

    def test_counters_match_scalar_semantics(self, batch_data):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        evaluator.evaluate_many(maskings[:4])
        stats = evaluator.stats()
        assert {k: stats[k] for k in
                ("evaluations", "memo_hits", "persistent_hits", "batch_dedup")} == {
            "evaluations": 4, "memo_hits": 0, "persistent_hits": 0, "batch_dedup": 0,
        }
        assert stats["batches"] == 1
        assert stats["max_batch_size"] == 4
        assert stats["fresh_seconds"] > 0
        evaluator.evaluate_many(maskings[:4])  # all memo hits now
        assert evaluator.stats()["memo_hits"] == 4
        assert evaluator.stats()["evaluations"] == 4
        # The scalar path feeds the same counters.
        evaluator.evaluate(maskings[0])
        assert evaluator.stats()["memo_hits"] == 5

    def test_cache_disabled_still_dedupes(self, batch_data):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS, cache_size=0)
        scores = evaluator.evaluate_many([maskings[0], maskings[0], maskings[1]])
        assert evaluator.evaluations == 2
        assert evaluator.batch_dedup == 1
        assert scores[0] == scores[1]

    def test_mixed_memo_persistent_fresh(self, batch_data, tmp_path):
        """One batch resolving through all three layers stays exact."""
        original, maskings = batch_data
        cache = EvaluationCache(tmp_path / "evals.sqlite")
        warm = ProtectionEvaluator(original, ATTRS, persistent_cache=cache)
        warm.evaluate_many(maskings[:3])  # persist 3

        evaluator = ProtectionEvaluator(original, ATTRS, persistent_cache=cache)
        evaluator.evaluate_many(maskings[1:2])  # memo-load one of them
        scores = evaluator.evaluate_many(maskings[:6])
        assert evaluator.stats()["memo_hits"] == 1
        assert evaluator.stats()["persistent_hits"] == 2 + 1  # 2 here, 1 earlier
        reference = ProtectionEvaluator(original, ATTRS)
        assert scores == [reference.evaluate(m) for m in maskings[:6]]
        cache.close()

    def test_plain_scorecache_without_bulk_surface(self, batch_data):
        """A get/put-only ScoreCache still works through the fallback."""
        original, maskings = batch_data

        class DictCache:
            def __init__(self):
                self.data = {}
                self.gets = 0

            def get(self, key):
                self.gets += 1
                return self.data.get(key)

            def put(self, key, score):
                self.data[key] = score

        store = DictCache()
        evaluator = ProtectionEvaluator(original, ATTRS, persistent_cache=store)
        evaluator.evaluate_many(maskings[:3])
        assert len(store.data) == 3
        fresh = ProtectionEvaluator(original, ATTRS, persistent_cache=store)
        fresh.evaluate_many(maskings[:3])
        assert fresh.persistent_hits == 3
        assert fresh.evaluations == 0


class TestExecutors:
    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("thread", 4)])
    def test_thread_executor_identical(self, batch_data, backend, workers):
        original, maskings = batch_data
        reference = ProtectionEvaluator(original, ATTRS)
        parallel = ProtectionEvaluator(
            original, ATTRS, executor=create_backend(backend, max_workers=workers)
        )
        assert parallel.evaluate_many(maskings) == [
            reference.evaluate(m) for m in maskings
        ]

    def test_process_executor_identical(self, batch_data):
        original, maskings = batch_data
        reference = ProtectionEvaluator(original, ATTRS)
        parallel = ProtectionEvaluator(
            original, ATTRS, executor=create_backend("process", max_workers=2)
        )
        assert parallel.evaluate_many(maskings[:6]) == [
            reference.evaluate(m) for m in maskings[:6]
        ]

    def test_singleton_skips_executor(self, batch_data):
        original, maskings = batch_data

        class ExplodingExecutor:
            max_workers = 2

            def map(self, fn, items):  # pragma: no cover - must not run
                raise AssertionError("executor used for a singleton batch")

        evaluator = ProtectionEvaluator(original, ATTRS, executor=ExplodingExecutor())
        reference = ProtectionEvaluator(original, ATTRS)
        assert evaluator.evaluate_many([maskings[0]]) == [reference.evaluate(maskings[0])]


class TestCacheBulkSurface:
    def test_get_many_put_many_roundtrip(self, batch_data, tmp_path):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        scores = evaluator.evaluate_many(maskings[:4])
        keys = [evaluator.cache_key(m) for m in maskings[:4]]
        cache = EvaluationCache(tmp_path / "bulk.sqlite")
        cache.put_many(list(zip(keys, scores)))
        assert cache.writes == 4
        assert len(cache) == 4
        found = cache.get_many(keys + ["missing-key"])
        assert set(found) == set(keys)
        assert [found[k] for k in keys] == scores
        assert cache.hits == 4 and cache.misses == 1
        # Singleton surface agrees with the bulk one.
        assert cache.get(keys[0]) == scores[0]
        cache.close()

    def test_put_many_counts_overwrites_once(self, batch_data, tmp_path):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        scores = evaluator.evaluate_many(maskings[:3])
        keys = [evaluator.cache_key(m) for m in maskings[:3]]
        cache = EvaluationCache(tmp_path / "bulk.sqlite")
        cache.put_many(list(zip(keys, scores)))
        cache.put_many(list(zip(keys, scores)))  # overwrite, not growth
        assert len(cache) == 3
        cache.close()

    def test_put_many_respects_lru_bound(self, batch_data, tmp_path):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        scores = evaluator.evaluate_many(maskings[:6])
        keys = [evaluator.cache_key(m) for m in maskings[:6]]
        cache = EvaluationCache(tmp_path / "bounded.sqlite", max_entries=4)
        cache.put_many(list(zip(keys, scores)))
        assert len(cache) == 4
        assert cache.evictions == 2
        cache.close()

    def test_readonly_put_many_noop(self, batch_data, tmp_path):
        original, maskings = batch_data
        evaluator = ProtectionEvaluator(original, ATTRS)
        (score,) = evaluator.evaluate_many(maskings[:1])
        path = tmp_path / "ro.sqlite"
        EvaluationCache(path).close()
        cache = EvaluationCache(path, readonly=True)
        cache.put_many([("k", score)])
        assert len(cache) == 0
        cache.close()
