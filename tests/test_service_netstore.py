"""Network job store: transport behaviour and cross-machine invariants.

The store *semantics* shared with the file backend live in
``tests/test_store_contract.py``; this module covers what only the
network layer adds — token auth, retry/backoff into
``StoreUnavailableError``, the checkpoint spool, protocol hygiene — and
the acceptance end-to-end: two remote workers over real HTTP partition a
queue with zero double-executions and results byte-identical to a serial
run.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServiceError, StoreUnavailableError
from repro.service import (
    JobRecord,
    JobRunner,
    JobStore,
    JobStoreServer,
    ProtectionJob,
    RemoteJobStore,
    Worker,
)

TOKEN = "s3cret"


@pytest.fixture
def backing(tmp_path):
    return JobStore(tmp_path / "state")


@pytest.fixture
def server(backing):
    with JobStoreServer(backing, token=TOKEN) as live:
        yield live


def _client(server, tmp_path, name="spool", **kwargs):
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("backoff", 0.02)
    return RemoteJobStore(server.url, token=TOKEN, spool=tmp_path / name, **kwargs)


class TestTransport:
    def test_health_endpoint_needs_no_token(self, server):
        with urllib.request.urlopen(f"{server.url}/health", timeout=5) as response:
            assert json.loads(response.read()) == {"ok": True}

    def test_ping_reports_protocol_version(self, server, tmp_path):
        assert _client(server, tmp_path).ping()["protocol"] == 1

    def test_wrong_token_rejected(self, server, tmp_path):
        client = RemoteJobStore(server.url, token="wrong", spool=tmp_path / "s",
                                retries=0)
        with pytest.raises(ServiceError, match="unauthorized"):
            client.records()

    def test_missing_token_rejected(self, server, tmp_path):
        client = RemoteJobStore(server.url, spool=tmp_path / "s", retries=0)
        with pytest.raises(ServiceError, match="unauthorized"):
            client.records()

    def test_unknown_method_rejected(self, server, tmp_path):
        with pytest.raises(ServiceError, match="unknown method"):
            _client(server, tmp_path)._call("drop_all_tables")

    def test_unknown_path_rejected(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_unreachable_store_raises_after_retries(self, tmp_path):
        client = RemoteJobStore("http://127.0.0.1:9", spool=tmp_path / "s",
                                retries=2, backoff=0.01, timeout=0.5)
        with pytest.raises(StoreUnavailableError, match="after 3 attempt"):
            client.records()

    def test_stopped_server_raises_store_unavailable(self, backing, tmp_path):
        server = JobStoreServer(backing, token=TOKEN).start()
        client = _client(server, tmp_path)
        assert client.records() == []
        server.stop()
        with pytest.raises(StoreUnavailableError):
            client.records()

    def test_job_id_traversal_rejected_on_every_rpc(self, server, backing, tmp_path):
        # Job ids become file names in the served state directory; every
        # RPC that takes one — not just the checkpoint ops — must reject
        # an id that could escape it, before touching the disk.
        client = _client(server, tmp_path)
        evil = "../../../etc/passwd"
        for method in ("get", "claim", "release", "heartbeat", "claim_info"):
            with pytest.raises(ServiceError, match="invalid job id"):
                client._call(method, job_id=evil)
        with pytest.raises(ServiceError, match="invalid job id"):
            client._call("get_checkpoint", job_id=evil)
        with pytest.raises(ServiceError, match="invalid job id"):
            client._call("put_checkpoint", job_id=".hidden", payload={})
        # A record/job smuggling a traversal through its dataset field
        # (job ids are derived from it) is rejected the same way.
        record = JobRecord(job=ProtectionJob(dataset="../escape", generations=1))
        with pytest.raises(ServiceError, match="invalid job id"):
            client.save(record)
        with pytest.raises(ServiceError, match="invalid job id"):
            client.submit(record.job)
        assert not (backing.claims_dir.parent.parent / "etc").exists()


class TestCheckpointSpool:
    def _checkpoint(self, version=1, fingerprint="fp", generation=3):
        return {"version": version, "fingerprint": fingerprint,
                "generation": generation}

    def test_winning_a_claim_downloads_server_checkpoint(self, server, backing, tmp_path):
        (backing.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint(generation=5)), encoding="utf-8"
        )
        client = _client(server, tmp_path)
        assert client.claim("job-1", owner="w")
        local = client.checkpoints_dir / "job-1.json"
        assert json.loads(local.read_text(encoding="utf-8"))["generation"] == 5

    def test_losing_a_claim_downloads_nothing(self, server, backing, tmp_path):
        (backing.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint()), encoding="utf-8"
        )
        backing.claim("job-1", owner="other")
        client = _client(server, tmp_path)
        assert not client.claim("job-1", owner="w")
        assert not (client.checkpoints_dir / "job-1.json").exists()

    def test_heartbeat_uploads_changed_checkpoint(self, server, backing, tmp_path):
        client = _client(server, tmp_path)
        assert client.claim("job-1", owner="w")
        (client.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint(generation=9)), encoding="utf-8"
        )
        assert client.heartbeat("job-1", owner="w")
        remote = backing.checkpoints_dir / "job-1.json"
        assert json.loads(remote.read_text(encoding="utf-8"))["generation"] == 9

    def test_release_uploads_final_checkpoint(self, server, backing, tmp_path):
        client = _client(server, tmp_path)
        assert client.claim("job-1", owner="w")
        (client.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint(generation=11)), encoding="utf-8"
        )
        assert client.release("job-1", owner="w")
        remote = backing.checkpoints_dir / "job-1.json"
        assert json.loads(remote.read_text(encoding="utf-8"))["generation"] == 11

    def test_lost_owner_cannot_clobber_new_owners_checkpoint(
        self, server, backing, tmp_path
    ):
        # Worker A's claim is recovered and re-granted to B; A's late
        # release must not overwrite the checkpoint B has uploaded.
        client_a = _client(server, tmp_path, name="spool-a")
        assert client_a.claim("job-1", owner="worker-a")
        (client_a.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint(generation=3)), encoding="utf-8"
        )
        backing.release("job-1")  # stale recovery
        backing.claim("job-1", owner="worker-b")
        (backing.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint(generation=8)), encoding="utf-8"
        )
        assert client_a.release("job-1", owner="worker-a") is False
        remote = backing.checkpoints_dir / "job-1.json"
        assert json.loads(remote.read_text(encoding="utf-8"))["generation"] == 8

    def test_unchanged_checkpoint_not_reuploaded(self, server, backing, tmp_path):
        (backing.checkpoints_dir / "job-1.json").write_text(
            json.dumps(self._checkpoint()), encoding="utf-8"
        )
        client = _client(server, tmp_path)
        assert client.claim("job-1", owner="w")
        server_mtime = (backing.checkpoints_dir / "job-1.json").stat().st_mtime
        assert client.heartbeat("job-1", owner="w")
        assert (backing.checkpoints_dir / "job-1.json").stat().st_mtime == server_mtime


class TestRemoteWorkers:
    def _jobs(self, seeds=(1, 2, 3, 4)):
        return [ProtectionJob(dataset="adult", generations=1, seed=s) for s in seeds]

    def test_remote_worker_runs_queued_job(self, server, backing, tmp_path):
        client = _client(server, tmp_path)
        (job,) = self._jobs(seeds=(7,))
        client.submit(job)
        (outcome,) = Worker(client, worker_id="remote", use_cache=False).run_once()
        assert outcome.ok
        assert backing.get(job.job_id).status == "completed"
        assert backing.claimed_job_ids() == []

    def test_two_http_workers_partition_queue_byte_identical_to_serial(
        self, server, backing, tmp_path
    ):
        # The acceptance invariant, over real HTTP: two workers on
        # separate client spools drain one server queue with zero
        # double-executions, and the fleet's results are byte-identical
        # to running the same jobs serially with no service at all.
        jobs = self._jobs()
        submit_client = _client(server, tmp_path, name="submitter")
        for job in jobs:
            submit_client.submit(job)

        executed: dict[str, list[str]] = {"w1": [], "w2": []}
        errors: list[Exception] = []
        barrier = threading.Barrier(2)

        def drain(name: str) -> None:
            store = _client(server, tmp_path, name=f"spool-{name}", retries=3)
            worker = Worker(store, worker_id=name, use_cache=False)
            barrier.wait()
            try:
                executed[name] = [out.job_id for out in worker.run_once()]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drain, args=(n,)) for n in executed]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert set(executed["w1"]).isdisjoint(executed["w2"])
        assert sorted(executed["w1"] + executed["w2"]) == sorted(
            job.job_id for job in jobs
        )

        serial = JobRunner(backend="serial").run(jobs)
        for job, expected in zip(jobs, serial):
            record = backing.get(job.job_id)
            assert record.status == "completed"
            assert record.result.final_scores == expected.final_scores
            assert record.result.best_score == expected.best_score
        assert backing.claimed_job_ids() == []

    def test_local_and_remote_workers_share_one_queue(self, server, backing, tmp_path):
        # The server adds no state: a worker on the server's filesystem
        # and a remote worker over HTTP obey one claim protocol.
        jobs = self._jobs(seeds=(11, 12))
        client = _client(server, tmp_path)
        for job in jobs:
            client.submit(job)
        remote_worker = Worker(client, worker_id="remote", use_cache=False)
        local_worker = Worker(backing, worker_id="local", use_cache=False)
        remote_done = [out.job_id for out in remote_worker.run_once(max_jobs=1)]
        local_done = [out.job_id for out in local_worker.run_once()]
        assert sorted(remote_done + local_done) == sorted(j.job_id for j in jobs)
        for job in jobs:
            assert backing.get(job.job_id).status == "completed"
