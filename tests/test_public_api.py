"""Documentation-consistency tests: the public API the README promises."""

from __future__ import annotations

import importlib

import pytest

import repro

README_NAMES = [
    # quickstart snippet
    "load_adult",
    "protected_attributes",
    "build_initial_population",
    "ProtectionEvaluator",
    "MaxScore",
    "EvolutionaryProtector",
    # architecture section highlights
    "Microaggregation",
    "MdavMicroaggregation",
    "RankSwapping",
    "Pram",
    "InvariantPram",
    "TopCoding",
    "BottomCoding",
    "GlobalRecoding",
    "LocalSuppression",
    "ProtectionPipeline",
    "ContingencyTableLoss",
    "DistanceBasedLoss",
    "EntropyBasedLoss",
    "IntervalDisclosure",
    "MeanScore",
    "WeightedScore",
    "PowerMeanScore",
    "ValueHierarchy",
    "fanout_hierarchy",
    "read_csv",
    "write_csv",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", README_NAMES)
    def test_readme_name_importable(self, name):
        assert hasattr(repro, name)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_matches_pyproject(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as handle:
            project = tomllib.load(handle)
        assert repro.__version__ == project["project"]["version"]

    @pytest.mark.parametrize(
        "module",
        [
            "repro.data",
            "repro.hierarchy",
            "repro.datasets",
            "repro.methods",
            "repro.metrics",
            "repro.linkage",
            "repro.core",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None

    def test_every_public_callable_has_docstring(self):
        import inspect

        missing = []
        for name in repro.__all__:
            if name.startswith("__") or name == "build_initial_population":
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"public items without docstrings: {missing}"
