"""CLI surfaces of the telemetry layer.

``status --json`` / ``cache --json`` machine output, the per-job run
timeline ``status --job`` renders from ``JobResult.extras``, the
``repro top`` fleet overview, and the ``--log-json`` event stream on
the service commands.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.service import JobStore, ProtectionJob


@pytest.fixture(autouse=True)
def reset_telemetry():
    """CLI commands enable the global registry; leave it clean after."""
    yield
    obs.disable()
    obs.get_registry().reset()
    obs.configure_events(None)


@pytest.fixture(scope="module")
def state_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("obs-cli-state"))
    assert main([
        "submit", "--dataset", "flare", "--generations", "4",
        "--seed", "11", "--state-dir", path,
    ]) == 0
    obs.disable()
    obs.get_registry().reset()
    return path


@pytest.fixture(scope="module")
def job_id():
    return ProtectionJob(dataset="flare", generations=4, seed=11).job_id


class TestStatusJson:
    def test_list_is_json_array_of_records(self, state_dir, job_id, capsys):
        assert main(["status", "--state-dir", state_dir, "--json"]) == 0
        (payload,) = json.loads(capsys.readouterr().out)
        assert payload["job_id"] == job_id
        assert payload["status"] == "completed"
        assert payload["result"]["best_score"] > 0
        assert payload["result"]["evaluator_stats"]["evaluations"] > 0
        assert payload["timeline"]["generations"] == 4

    def test_single_job_includes_timeline_trace(self, state_dir, job_id, capsys):
        assert main(["status", "--state-dir", state_dir,
                     "--job", job_id, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        trace = payload["timeline_trace"]
        assert trace["generation"] == [1, 2, 3, 4]
        assert len(trace["best"]) == 4
        assert set(trace["operator"]) <= {"m", "c"}

    def test_text_single_job_renders_timeline_table(self, state_dir, job_id,
                                                    capsys):
        assert main(["status", "--state-dir", state_dir, "--job", job_id]) == 0
        out = capsys.readouterr().out
        assert "run timeline: 4 generation(s)" in out
        assert "accepted" in out
        assert out.count("crossover") + out.count("mutation") >= 4


class TestCacheJson:
    def test_inspect(self, state_dir, capsys):
        assert main(["cache", "--state-dir", state_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] > 0
        assert payload["cache"].endswith("evaluations.sqlite")

    def test_evict_reports_bound(self, state_dir, capsys):
        assert main(["cache", "--state-dir", state_dir,
                     "--max-entries", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bound"] == 5
        assert payload["entries"] <= 5
        assert "evicted" in payload


class TestTop:
    def test_text_snapshot(self, state_dir, capsys):
        assert main(["top", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "jobs: completed=1" in out
        assert "last 1m" in out

    def test_json_snapshot(self, state_dir, capsys):
        assert main(["top", "--state-dir", state_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == {"completed": 1}
        assert payload["throughput"]["1h"]["completed"] == 1
        assert payload["throughput"]["1h"]["evaluations"] > 0
        assert payload["running"] == []

    def test_running_job_listed_with_owner(self, tmp_path, capsys):
        store = JobStore(tmp_path / "state")
        record = store.submit(ProtectionJob(dataset="flare", generations=2))
        store.claim(record.job_id, owner="w-live")
        store.mark_running(record)
        assert main(["top", "--state-dir", str(tmp_path / "state"),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (running,) = payload["running"]
        assert running["owner"] == "w-live"
        assert running["heartbeat_age_seconds"] is not None
        assert payload["workers"] == ["w-live"]


class TestLogJson:
    def test_worker_streams_events_to_stderr(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["submit", "--dataset", "flare", "--generations", "3",
                     "--seed", "7", "--state-dir", state, "--detach"]) == 0
        capsys.readouterr()
        assert main(["worker", "--once", "--state-dir", state,
                     "--log-json"]) == 0
        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.splitlines()]
        names = [e["event"] for e in events]
        assert names.count("generation") == 3
        assert "job_completed" in names
        for event in events:
            assert event["command"] == "worker"
            assert "worker" in event  # bound worker id on every line

    def test_submit_streams_generation_events(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["submit", "--dataset", "flare", "--generations", "2",
                     "--seed", "3", "--state-dir", state, "--log-json"]) == 0
        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.splitlines()]
        assert [e["event"] for e in events].count("generation") == 2
        assert all(e["command"] == "submit" for e in events)

    def test_stdout_stays_clean_for_pipes(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["submit", "--dataset", "flare", "--generations", "2",
                     "--seed", "4", "--state-dir", state, "--detach"]) == 0
        capsys.readouterr()
        assert main(["worker", "--once", "--state-dir", state,
                     "--log-json"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            assert not line.startswith("{")  # tables only, no JSON leakage
