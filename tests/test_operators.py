"""Unit tests for the genetic operators (paper §2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import crossover, crossover_points, mutate
from repro.exceptions import EvolutionError
from repro.methods import Pram

ATTRS = ["EDUCATION", "MARITAL-STATUS", "OCCUPATION"]


class TestMutate:
    def test_changes_exactly_one_cell(self, adult):
        child = mutate(adult, ATTRS, seed=0)
        assert adult.cells_changed(child) == 1

    def test_changed_cell_in_protected_attribute(self, adult):
        child = mutate(adult, ATTRS, seed=1)
        rows, cols = np.nonzero(adult.codes != child.codes)
        attribute = adult.attribute_names[cols[0]]
        assert attribute in ATTRS

    def test_new_value_differs_and_is_valid(self, adult):
        for seed in range(20):
            child = mutate(adult, ATTRS, seed=seed)
            rows, cols = np.nonzero(adult.codes != child.codes)
            row, col = rows[0], cols[0]
            domain = adult.schema.domain(int(col))
            assert child.codes[row, col] != adult.codes[row, col]
            assert domain.contains_code(int(child.codes[row, col]))

    def test_original_untouched(self, adult):
        before = adult.codes.copy()
        mutate(adult, ATTRS, seed=2)
        assert np.array_equal(adult.codes, before)

    def test_deterministic_in_seed(self, adult):
        assert mutate(adult, ATTRS, seed=3).equals(mutate(adult, ATTRS, seed=3))

    def test_empty_attributes_rejected(self, adult):
        with pytest.raises(Exception):
            mutate(adult, [], seed=0)

    def test_custom_name(self, adult):
        assert mutate(adult, ATTRS, seed=0, name="kid").name == "kid"


class TestCrossover:
    def test_offspring_complementary(self, adult):
        """Cell-wise, each offspring takes its value from exactly one parent,
        and the two offspring split the parents complementarily."""
        other = Pram(theta=0.4).protect(adult, ATTRS, seed=0)
        child_a, child_b = crossover(adult, other, ATTRS, seed=1)
        columns = [adult.schema.index_of(a) for a in ATTRS]
        pa = adult.codes[:, columns]
        pb = other.codes[:, columns]
        ca = child_a.codes[:, columns]
        cb = child_b.codes[:, columns]
        # Where child A kept parent A's value, child B holds parent B's, and
        # vice versa: the multiset {ca, cb} == {pa, pb} cell-wise.
        swapped = ca == pb
        kept = ca == pa
        assert np.logical_or(swapped, kept).all()
        assert np.array_equal(np.where(ca == pa, pb, pa), cb) or np.logical_or(
            cb == pa, cb == pb
        ).all()

    def test_swapped_region_contiguous(self, adult):
        other = Pram(theta=0.9).protect(adult, ATTRS, seed=0)
        child_a, __ = crossover(adult, other, ATTRS, seed=2)
        columns = [adult.schema.index_of(a) for a in ATTRS]
        flat_parent = adult.codes[:, columns].reshape(-1)
        flat_other = other.codes[:, columns].reshape(-1)
        flat_child = child_a.codes[:, columns].reshape(-1)
        took_other = flat_child == flat_other
        took_parent = flat_child == flat_parent
        # Positions definitely from the other parent (parents differ there):
        definite = np.nonzero(took_other & ~took_parent)[0]
        if definite.size:
            span = np.arange(definite[0], definite[-1] + 1)
            # Everything inside the span must be explainable by the swap.
            assert took_other[span].all()

    def test_unprotected_attributes_never_cross(self, adult):
        other = Pram(theta=0.4).protect(adult, ATTRS, seed=0)
        child_a, child_b = crossover(adult, other, ATTRS, seed=3)
        for attribute in adult.attribute_names:
            if attribute in ATTRS:
                continue
            assert np.array_equal(child_a.column(attribute), adult.column(attribute))
            assert np.array_equal(child_b.column(attribute), other.column(attribute))

    def test_deterministic_in_seed(self, adult):
        other = Pram(theta=0.4).protect(adult, ATTRS, seed=0)
        a1, b1 = crossover(adult, other, ATTRS, seed=4)
        a2, b2 = crossover(adult, other, ATTRS, seed=4)
        assert a1.equals(a2) and b1.equals(b2)

    def test_parents_untouched(self, adult):
        other = Pram(theta=0.4).protect(adult, ATTRS, seed=0)
        before_a, before_b = adult.codes.copy(), other.codes.copy()
        crossover(adult, other, ATTRS, seed=5)
        assert np.array_equal(adult.codes, before_a)
        assert np.array_equal(other.codes, before_b)

    def test_names_applied(self, adult):
        other = Pram(theta=0.4).protect(adult, ATTRS, seed=0)
        child_a, child_b = crossover(adult, other, ATTRS, seed=6, names=("ka", "kb"))
        assert child_a.name == "ka" and child_b.name == "kb"


class TestCrossoverPoints:
    def test_r_at_least_s(self):
        for seed in range(50):
            s, r = crossover_points(100, seed=seed)
            assert 0 <= s <= r < 100

    def test_single_position(self):
        assert crossover_points(1, seed=0) == (0, 0)

    def test_bad_length(self):
        with pytest.raises(EvolutionError):
            crossover_points(0)
