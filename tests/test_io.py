"""Unit tests for CSV io."""

from __future__ import annotations

import pytest

from repro.data import read_csv, read_csv_inferring_schema, write_csv
from repro.exceptions import DataFormatError


class TestRoundtrip:
    def test_write_read_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        write_csv(tiny_dataset, path)
        loaded = read_csv(path, tiny_dataset.schema)
        assert loaded.equals(tiny_dataset)

    def test_roundtrip_with_delimiter(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.tsv"
        write_csv(tiny_dataset, path, delimiter=";")
        loaded = read_csv(path, tiny_dataset.schema, delimiter=";")
        assert loaded.equals(tiny_dataset)

    def test_read_uses_stem_as_default_name(self, tiny_dataset, tmp_path):
        path = tmp_path / "myfile.csv"
        write_csv(tiny_dataset, path)
        assert read_csv(path, tiny_dataset.schema).name == "myfile"

    def test_infer_schema_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        write_csv(tiny_dataset, path)
        loaded = read_csv_inferring_schema(path, ordinal=["SIZE"])
        # Same labels cell-by-cell even though inferred domains may order
        # categories differently.
        assert loaded.to_labels() == tiny_dataset.to_labels()
        assert loaded.domain("SIZE").ordinal


class TestErrors:
    def test_empty_file(self, tiny_dataset, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFormatError, match="empty"):
            read_csv(path, tiny_dataset.schema)

    def test_header_mismatch(self, tiny_dataset, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("X,Y,Z\nred,M,round\n")
        with pytest.raises(DataFormatError, match="header"):
            read_csv(path, tiny_dataset.schema)

    def test_short_row(self, tiny_dataset, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("COLOR,SIZE,SHAPE\nred,M\n")
        with pytest.raises(DataFormatError, match="expected 3 fields"):
            read_csv(path, tiny_dataset.schema)

    def test_unknown_label(self, tiny_dataset, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("COLOR,SIZE,SHAPE\nmagenta,M,round\n")
        with pytest.raises(DataFormatError, match="magenta"):
            read_csv(path, tiny_dataset.schema)

    def test_infer_duplicate_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,A\nx,y\n")
        with pytest.raises(DataFormatError, match="duplicate"):
            read_csv_inferring_schema(path)

    def test_infer_no_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,B\n")
        with pytest.raises(DataFormatError, match="no data rows"):
            read_csv_inferring_schema(path)
