"""Persistent evaluation cache: hit/miss accounting and evaluator wiring."""

from __future__ import annotations

import pytest

from repro.metrics import MaxScore, MeanScore, ProtectionEvaluator, ProtectionScore
from repro.methods import Pram
from repro.service import EvaluationCache, score_from_dict, score_to_dict

ATTRS = ("EDUCATION", "MARITAL-STATUS", "OCCUPATION")


def _score(value: float = 1.0) -> ProtectionScore:
    return ProtectionScore(
        information_loss=value,
        disclosure_risk=2 * value,
        score=2 * value,
        il_components={"CTBIL": value},
        dr_components={"ID": 2 * value},
    )


class TestEvaluationCache:
    def test_miss_then_hit(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        assert cache.get("k") is None
        cache.put("k", _score())
        stored = cache.get("k")
        assert stored == _score()
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "writes": 1, "evictions": 0,
        }

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with EvaluationCache(path) as cache:
            cache.put("k", _score(3.0))
        with EvaluationCache(path) as fresh:
            assert fresh.get("k") == _score(3.0)
            assert fresh.hits == 1 and fresh.misses == 0

    def test_clear(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        cache.put("a", _score())
        cache.put("b", _score())
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_readonly_skips_writes(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        cache = EvaluationCache(path, readonly=True)
        cache.put("k", _score())
        assert len(cache) == 0 and cache.writes == 0

    def test_score_serde_roundtrip(self):
        score = _score(0.123456789)
        assert score_from_dict(score_to_dict(score)) == score

    def test_stats_safe_after_close(self, tmp_path):
        cache = EvaluationCache(tmp_path / "cache.sqlite")
        cache.put("k", _score())
        cache.get("k")
        cache.close()
        cache.close()  # idempotent
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["writes"] == 1

    def test_counters_exact_under_concurrent_use(self, tmp_path):
        # Regression: hits/misses/writes were mutated outside the lock,
        # so a shared instance under the thread backend dropped updates.
        import threading

        cache = EvaluationCache(tmp_path / "cache.sqlite")
        n_threads, n_ops = 8, 50

        def hammer(thread_index: int) -> None:
            for op in range(n_ops):
                cache.get(f"missing-{thread_index}-{op}")
                cache.put(f"key-{thread_index}-{op}", _score())
                cache.get(f"key-{thread_index}-{op}")

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.misses == n_threads * n_ops
        assert cache.writes == n_threads * n_ops
        assert cache.hits == n_threads * n_ops


class TestEvaluatorIntegration:
    @pytest.fixture()
    def masked(self, small_adult):
        return Pram(theta=0.3).protect(small_adult, ATTRS, seed=5)

    def test_persistent_hit_skips_fresh_evaluation(self, small_adult, masked, tmp_path):
        path = tmp_path / "cache.sqlite"
        first = ProtectionEvaluator(
            small_adult, ATTRS, persistent_cache=EvaluationCache(path)
        )
        cold = first.evaluate(masked)
        assert first.evaluations == 1 and first.persistent_hits == 0

        second = ProtectionEvaluator(
            small_adult, ATTRS, persistent_cache=EvaluationCache(path)
        )
        warm = second.evaluate(masked)
        assert warm == cold
        assert second.evaluations == 0 and second.persistent_hits == 1
        assert second.cache_info()["persistent_hits"] == 1
        # The persistent hit is memoized: a repeat is an in-process hit.
        second.evaluate(masked)
        assert second.cache_hits == 1 and second.persistent_hits == 1

    def test_different_score_function_does_not_collide(self, small_adult, masked, tmp_path):
        path = tmp_path / "cache.sqlite"
        max_eval = ProtectionEvaluator(
            small_adult, ATTRS, score_function=MaxScore(),
            persistent_cache=EvaluationCache(path),
        )
        max_eval.evaluate(masked)
        mean_eval = ProtectionEvaluator(
            small_adult, ATTRS, score_function=MeanScore(),
            persistent_cache=EvaluationCache(path),
        )
        mean_eval.evaluate(masked)
        # Same candidate, different configuration: a fresh evaluation.
        assert mean_eval.persistent_hits == 0 and mean_eval.evaluations == 1

    def test_parameterized_score_functions_do_not_collide(self, small_adult, masked, tmp_path):
        from repro.metrics import WeightedScore

        path = tmp_path / "cache.sqlite"
        heavy = ProtectionEvaluator(
            small_adult, ATTRS, score_function=WeightedScore(0.9),
            persistent_cache=EvaluationCache(path),
        )
        heavy_score = heavy.evaluate(masked)
        light = ProtectionEvaluator(
            small_adult, ATTRS, score_function=WeightedScore(0.1),
            persistent_cache=EvaluationCache(path),
        )
        light_score = light.evaluate(masked)
        # Same candidate, same score *name*, different weight: the light
        # evaluator must compute fresh, not read the heavy entry.
        assert light.persistent_hits == 0 and light.evaluations == 1
        assert light_score.score != heavy_score.score

    def test_parameterized_measures_do_not_collide(self, small_adult):
        from repro.metrics import ContingencyTableLoss, default_dr_measures

        shallow = ProtectionEvaluator(
            small_adult, ATTRS,
            il_measures=[ContingencyTableLoss(small_adult, ATTRS, max_order=1)],
            dr_measures=default_dr_measures(small_adult, ATTRS),
        )
        deep = ProtectionEvaluator(
            small_adult, ATTRS,
            il_measures=[ContingencyTableLoss(small_adult, ATTRS, max_order=2)],
            dr_measures=default_dr_measures(small_adult, ATTRS),
        )
        assert shallow.config_fingerprint() != deep.config_fingerprint()

    def test_config_fingerprint_distinguishes_configurations(self, small_adult):
        a = ProtectionEvaluator(small_adult, ATTRS)
        b = ProtectionEvaluator(small_adult, ATTRS)
        assert a.config_fingerprint() == b.config_fingerprint()
        c = ProtectionEvaluator(small_adult, ATTRS, score_function=MeanScore())
        assert a.config_fingerprint() != c.config_fingerprint()
        d = ProtectionEvaluator(small_adult, ATTRS[:2])
        assert a.config_fingerprint() != d.config_fingerprint()

    def test_cache_key_tracks_candidate_content(self, small_adult, masked):
        evaluator = ProtectionEvaluator(small_adult, ATTRS)
        assert evaluator.cache_key(masked) != evaluator.cache_key(small_adult)
        assert evaluator.cache_key(masked) == evaluator.cache_key(masked)

    def test_works_with_memo_cache_disabled(self, small_adult, masked, tmp_path):
        path = tmp_path / "cache.sqlite"
        first = ProtectionEvaluator(
            small_adult, ATTRS, cache_size=0, persistent_cache=EvaluationCache(path)
        )
        cold = first.evaluate(masked)
        warm = first.evaluate(masked)
        assert warm == cold
        assert first.evaluations == 1 and first.persistent_hits == 1
