"""Property-based tests (hypothesis) for the data substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CategoricalDataset, CategoricalDomain, DatasetSchema


@st.composite
def domains(draw, name="X"):
    size = draw(st.integers(min_value=1, max_value=12))
    ordinal = draw(st.booleans())
    return CategoricalDomain(name, [f"{name}{i}" for i in range(size)], ordinal=ordinal)


@st.composite
def datasets(draw, max_records=30, max_attributes=4):
    n_attributes = draw(st.integers(min_value=1, max_value=max_attributes))
    schema = DatasetSchema([draw(domains(name=f"A{i}")) for i in range(n_attributes)])
    n_records = draw(st.integers(min_value=1, max_value=max_records))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    codes = np.column_stack(
        [rng.integers(0, schema.domain(i).size, size=n_records) for i in range(n_attributes)]
    )
    return CategoricalDataset(codes, schema)


class TestDomainProperties:
    @given(domains())
    def test_code_label_bijection(self, domain):
        for code in range(domain.size):
            assert domain.code(domain.label(code)) == code

    @given(domains(), st.integers(min_value=0, max_value=11))
    def test_contains_consistent_with_label(self, domain, code):
        if domain.contains_code(code):
            assert domain.contains_label(domain.label(code))


class TestDatasetProperties:
    @given(datasets())
    @settings(max_examples=40)
    def test_label_roundtrip(self, dataset):
        rebuilt = CategoricalDataset.from_labels(dataset.to_labels(), dataset.schema)
        assert rebuilt.equals(dataset)

    @given(datasets())
    @settings(max_examples=40)
    def test_value_counts_sum_to_records(self, dataset):
        for attribute in dataset.attribute_names:
            assert dataset.value_counts(attribute).sum() == dataset.n_records

    @given(datasets())
    @settings(max_examples=40)
    def test_cells_changed_zero_iff_equal(self, dataset):
        clone = dataset.with_codes(dataset.codes_copy())
        assert dataset.cells_changed(clone) == 0
        assert dataset.equals(clone)

    @given(datasets(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40)
    def test_cells_changed_counts_differences(self, dataset, seed):
        rng = np.random.default_rng(seed)
        codes = dataset.codes_copy()
        row = int(rng.integers(dataset.n_records))
        col = int(rng.integers(dataset.n_attributes))
        size = dataset.schema.domain(col).size
        original = codes[row, col]
        codes[row, col] = (original + 1) % size
        changed = dataset.with_codes(codes)
        expected = 0 if size == 1 else 1
        assert dataset.cells_changed(changed) == expected

    @given(datasets())
    @settings(max_examples=40)
    def test_fingerprint_equality_matches_content(self, dataset):
        clone = dataset.with_codes(dataset.codes_copy(), name="other-name")
        assert dataset.fingerprint() == clone.fingerprint()
