"""Unit tests for hierarchy CSV import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CategoricalDomain
from repro.exceptions import HierarchyError
from repro.hierarchy import (
    ValueHierarchy,
    fanout_hierarchy,
    read_hierarchy_csv,
    write_hierarchy_csv,
)


def domain(size=6, name="X"):
    return CategoricalDomain(name, [f"c{i}" for i in range(size)])


class TestRoundtrip:
    def test_write_read_roundtrip(self, tmp_path):
        original = fanout_hierarchy(domain(6), fanout=2)
        path = tmp_path / "h.csv"
        write_hierarchy_csv(original, path)
        loaded = read_hierarchy_csv(domain(6), path)
        assert loaded.n_levels == original.n_levels
        for level in range(original.n_levels):
            assert np.array_equal(loaded.group_of(level), original.group_of(level))

    def test_roundtrip_trivial_hierarchy(self, tmp_path):
        original = ValueHierarchy(domain(3), [np.array([0, 0, 0])])
        path = tmp_path / "h.csv"
        write_hierarchy_csv(original, path)
        loaded = read_hierarchy_csv(domain(3), path)
        assert loaded.n_groups(1) == 1

    def test_rows_permuted_still_loads(self, tmp_path):
        # Interchange files need not list categories in domain order.
        path = tmp_path / "h.csv"
        path.write_text("c2,A\nc0,A\nc1,B\n")
        loaded = read_hierarchy_csv(domain(3), path)
        groups = loaded.group_of(1)
        assert groups[2] == groups[0] != groups[1]


class TestErrors:
    def test_wrong_row_count(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("c0,A\nc1,A\n")
        with pytest.raises(HierarchyError, match="rows"):
            read_hierarchy_csv(domain(3), path)

    def test_unknown_label(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("zz,A\nc1,A\nc2,B\n")
        with pytest.raises(HierarchyError, match="unknown"):
            read_hierarchy_csv(domain(3), path)

    def test_duplicate_label(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("c0,A\nc0,A\nc2,B\n")
        with pytest.raises(HierarchyError, match="duplicate"):
            read_hierarchy_csv(domain(3), path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("c0,A\nc1\nc2,B\n")
        with pytest.raises(HierarchyError, match="column counts"):
            read_hierarchy_csv(domain(3), path)

    def test_non_coarsening_file_rejected(self, tmp_path):
        # c0 and c1 merge at level 1 but split again at level 2: invalid.
        path = tmp_path / "h.csv"
        path.write_text("c0,A,P\nc1,A,Q\nc2,B,Q\n")
        with pytest.raises(HierarchyError, match="splits"):
            read_hierarchy_csv(domain(3), path)

    def test_loaded_hierarchy_usable_in_recoding(self, adult, tmp_path):
        from repro.methods import GlobalRecoding

        hierarchy = fanout_hierarchy(adult.domain("EDUCATION"), fanout=2)
        path = tmp_path / "edu.csv"
        write_hierarchy_csv(hierarchy, path)
        loaded = read_hierarchy_csv(adult.domain("EDUCATION"), path)
        method = GlobalRecoding(level=2, hierarchies={"EDUCATION": loaded})
        masked = method.protect(adult, ["EDUCATION"])
        assert adult.cells_changed(masked) > 0
