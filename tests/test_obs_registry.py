"""Unit tests for the telemetry registry and event log (repro.obs).

The registry is shared by every thread in a worker process — the GA
loop, the claim heartbeat, netstore handler threads — so the contract
under test is exactness under concurrency: N threads of increments land
to the last count, snapshots taken mid-write are internally consistent,
and the Prometheus rendering escapes whatever ends up in label values.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    escape_label_value,
)

THREADS = 8
PER_THREAD = 500


@pytest.fixture(autouse=True)
def isolated_global_registry():
    """Keep the process-global registry quiet around every test here."""
    obs.disable()
    obs.get_registry().reset()
    obs.configure_events(None)
    yield
    obs.disable()
    obs.get_registry().reset()
    obs.configure_events(None)


def hammer(worker, n_threads=THREADS):
    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentExactness:
    def test_counter_increments_all_land(self):
        registry = MetricsRegistry()

        def worker(t):
            for _ in range(PER_THREAD):
                registry.inc("repro_test_total", result="won")
                registry.inc("repro_test_total", 2.0, result="lost")

        hammer(worker)
        counters = {
            tuple(sorted(c["labels"].items())): c["value"]
            for c in registry.snapshot()["counters"]
        }
        assert counters[(("result", "won"),)] == THREADS * PER_THREAD
        assert counters[(("result", "lost"),)] == 2.0 * THREADS * PER_THREAD

    def test_histogram_observations_all_land(self):
        registry = MetricsRegistry()
        registry.declare_histogram("repro_test_seconds", DEFAULT_SECONDS_BUCKETS)

        def worker(t):
            for i in range(PER_THREAD):
                registry.observe("repro_test_seconds", 0.001 * (i % 7))

        hammer(worker)
        (hist,) = registry.snapshot()["histograms"]
        assert hist["count"] == THREADS * PER_THREAD
        assert sum(hist["counts"]) == THREADS * PER_THREAD
        expected_sum = THREADS * sum(0.001 * (i % 7) for i in range(PER_THREAD))
        assert hist["sum"] == pytest.approx(expected_sum)

    def test_declare_histogram_after_observe_raises(self):
        """Re-bucketing live series would silently mis-bin observations."""
        registry = MetricsRegistry()
        registry.declare_histogram("repro_test_seconds", (0.1, 1.0))
        registry.observe("repro_test_seconds", 0.5)
        with pytest.raises(ValueError, match="already has observations"):
            registry.declare_histogram("repro_test_seconds", (0.5, 2.0))
        # Declaring the identical bounds again is legal: import-time
        # declares may run twice (module reload, multiple entry points).
        registry.declare_histogram("repro_test_seconds", (0.1, 1.0))
        # Bucket order must not matter for the identity check.
        registry.declare_histogram("repro_test_seconds", (1.0, 0.1))

    def test_snapshot_while_writing_is_consistent(self):
        """Snapshots taken mid-hammer are detached, parseable, monotone."""
        registry = MetricsRegistry()
        stop = threading.Event()
        seen: list[float] = []
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    snap = registry.snapshot()
                    json.dumps(snap)  # fully detached, JSON-clean
                    registry.render_prometheus()
                    for counter in snap["counters"]:
                        seen.append(counter["value"])
                except Exception as exc:  # pragma: no cover - the assertion
                    errors.append(exc)
                    return

        observer = threading.Thread(target=reader)
        observer.start()

        def worker(t):
            for _ in range(PER_THREAD):
                registry.inc("repro_test_total")
                registry.observe("repro_test_seconds", 0.01)

        hammer(worker)
        stop.set()
        observer.join()
        assert not errors
        assert seen == sorted(seen)  # counter never goes backwards
        final = registry.snapshot()["counters"][0]["value"]
        assert final == THREADS * PER_THREAD

    def test_timer_context_manager_records(self):
        registry = MetricsRegistry()
        with registry.time("repro_test_seconds", op="claim"):
            pass
        (hist,) = registry.snapshot()["histograms"]
        assert hist["count"] == 1
        assert hist["labels"] == {"op": "claim"}


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("repro_test_total")
        registry.set_gauge("repro_test_gauge", 3.0)
        registry.observe("repro_test_seconds", 0.5)
        with registry.time("repro_test_seconds"):
            pass
        snap = registry.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_global_registry_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_enable_disable_round_trip(self):
        registry = obs.enable()
        assert obs.is_enabled() and registry is obs.get_registry()
        registry.inc("repro_test_total")
        obs.disable()
        registry.inc("repro_test_total")
        assert registry.snapshot()["counters"][0]["value"] == 1


class TestPrometheusRendering:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        nasty = 'say "hi"\\path\nnewline'
        registry.inc("repro_test_total", error=nasty)
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text
        assert "\\\\path" in text
        assert "\\nnewline" in text
        assert "\n" not in text.split("repro_test_total{", 1)[1].split("}")[0]

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        registry.declare_histogram("repro_test_seconds", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            registry.observe("repro_test_seconds", value)
        text = registry.render_prometheus()
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_test_seconds_bucket{le="1"} 2' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_seconds_count 3" in text

    def test_counter_and_gauge_types(self):
        registry = MetricsRegistry()
        registry.inc("repro_test_total", 5)
        registry.set_gauge("repro_test_depth", 2.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_test_total counter" in text
        assert "repro_test_total 5" in text
        assert "# TYPE repro_test_depth gauge" in text
        assert "repro_test_depth 2.5" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestFleetIngest:
    def test_ingested_snapshot_rendered_with_source_label(self):
        local = MetricsRegistry()
        remote = MetricsRegistry()
        remote.inc("repro_worker_jobs_total", outcome="completed")
        local.ingest("worker-1", remote.snapshot())
        text = local.render_prometheus()
        assert ('repro_worker_jobs_total{outcome="completed",'
                'source="worker-1"} 1') in text

    def test_ingest_replaces_cumulative_snapshots(self):
        local = MetricsRegistry()
        remote = MetricsRegistry()
        remote.inc("repro_test_total", 3)
        local.ingest("w", remote.snapshot())
        remote.inc("repro_test_total", 4)
        local.ingest("w", remote.snapshot())
        assert 'repro_test_total{source="w"} 7' in local.render_prometheus()

    def test_ingest_works_on_disabled_registry(self):
        local = MetricsRegistry(enabled=False)
        local.ingest("w", {"counters": [{"name": "repro_test_total", "value": 1}],
                           "gauges": [], "histograms": []})
        assert 'repro_test_total{source="w"} 1' in local.render_prometheus()

    def test_source_cap_evicts_oldest(self):
        local = MetricsRegistry()
        for i in range(5):
            local.ingest(f"w{i}", {"counters": [], "gauges": [], "histograms": []},
                         max_sources=3)
        assert sorted(local.external_sources()) == ["w2", "w3", "w4"]

    def test_garbage_snapshot_ignored(self):
        local = MetricsRegistry()
        local.ingest("w", "not a dict")
        assert local.external_sources() == {}


class TestEventLog:
    def test_emit_writes_one_json_line_with_bound_fields(self):
        import io

        stream = io.StringIO()
        obs.enable()
        log = obs.configure_events(stream, command="worker")
        log.bind(worker="w-1")
        log.emit("job_completed", job_id="j1", wall_seconds=1.5)
        (line,) = stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["event"] == "job_completed"
        assert payload["command"] == "worker"
        assert payload["worker"] == "w-1"
        assert payload["job_id"] == "j1"
        assert isinstance(payload["ts"], float)

    def test_events_bump_counters_even_without_stream(self):
        obs.enable()
        obs.emit_event("generation")
        obs.emit_event("heartbeat_error")
        text = obs.get_registry().render_prometheus()
        assert 'repro_events_total{event="generation"} 1' in text
        assert 'repro_events_total{event="heartbeat_error"} 1' in text
        assert 'repro_errors_total{event="heartbeat_error"} 1' in text

    def test_emit_never_raises_on_broken_stream(self):
        class Broken:
            def write(self, _):
                raise OSError("pipe")

            def flush(self):  # pragma: no cover - never reached
                raise OSError("pipe")

        obs.enable()
        log = obs.configure_events(Broken())
        log.emit("generation")  # must not raise
        text = obs.get_registry().render_prometheus()
        assert 'repro_errors_total{event="event_log_write_error"} 1' in text

    def test_concurrent_emits_never_interleave_lines(self):
        import io

        stream = io.StringIO()
        obs.enable()
        log = obs.configure_events(stream)

        def worker(t):
            for i in range(100):
                log.emit("generation", thread=t, i=i)

        hammer(worker, n_threads=4)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 400
        for line in lines:
            json.loads(line)  # every line is one complete JSON object
