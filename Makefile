# Developer entry points.  Everything here is also runnable by hand —
# the Makefile only pins the incantations (PYTHONPATH, addopts
# overrides, bench env vars) so they are one word each.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint clean bench bench-islands stress

# Sweep compiled bytecode before the suite: a stale __pycache__ can
# shadow a deleted or renamed module (an orphaned cli.cpython-*.pyc
# resolves `import repro.cli` long after the source moved) and make
# tests pass against code that no longer exists.
test: clean
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	find . -name '*.pyc' -delete
	rm -rf .pytest_cache .ruff_cache .coverage

# Full-size benches; pass JSON=path/to/results.json for the
# machine-readable artifact.
JSON ?=
_JSON_FLAG = $(if $(JSON),--json $(JSON),)

bench:
	$(PYTHON) -m pytest -q -o addopts="" $(_JSON_FLAG) \
	    benchmarks/bench_evaluation.py benchmarks/bench_store.py \
	    benchmarks/bench_telemetry.py benchmarks/bench_islands.py

bench-islands:
	$(PYTHON) -m pytest -q -s -o addopts="" $(_JSON_FLAG) \
	    benchmarks/bench_islands.py

stress:
	$(PYTHON) -m pytest -q -m stress
