"""Scenario: plugging a custom fitness into the optimizer.

The paper's §4 highlights that the approach adapts to new measures "by
just providing a different fitness evaluation function".  This example
does exactly that: it defines a custom score function (a risk-averse
power mean) and a custom disclosure-risk measure (uniqueness risk: the
share of records whose quasi-identifier tuple is unique in the masked
file), wires both into a ProtectionEvaluator, and evolves with them.

Run:  python examples/custom_fitness.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EvolutionaryProtector,
    Pram,
    PowerMeanScore,
    ProtectionEvaluator,
    RankSwapping,
    load_german,
    protected_attributes,
)
from repro.metrics import DisclosureRiskMeasure, default_dr_measures, default_il_measures


class UniquenessRisk(DisclosureRiskMeasure):
    """Share of masked records with a population-unique quasi-identifier tuple.

    Sample uniques are the classic k-anonymity worry: a unique tuple in
    the published file is a direct re-identification handle.
    """

    measure_name = "uniqueness"

    def _compute(self, masked) -> float:
        columns = np.stack([masked.column(c) for c in self.columns], axis=1)
        _, inverse, counts = np.unique(
            columns, axis=0, return_inverse=True, return_counts=True
        )
        unique_share = float((counts[inverse] == 1).mean())
        return 100.0 * unique_share


def main() -> None:
    original = load_german()
    attributes = protected_attributes("german")

    # The paper's measure stacks, extended with the custom risk measure.
    dr_measures = default_dr_measures(original, attributes)
    dr_measures.append(UniquenessRisk(original, attributes))
    evaluator = ProtectionEvaluator(
        original,
        attributes,
        il_measures=default_il_measures(original, attributes),
        dr_measures=dr_measures,
        score_function=PowerMeanScore(exponent=4.0),  # between mean and max
    )

    protections = [
        Pram(theta=theta).protect(original, attributes, seed=seed)
        for seed, theta in enumerate((0.1, 0.2, 0.3, 0.4))
    ] + [
        RankSwapping(p=p).protect(original, attributes, seed=seed)
        for seed, p in enumerate((2, 5, 8, 11), start=20)
    ]

    engine = EvolutionaryProtector(evaluator, seed=3)
    result = engine.run(protections, stopping=120)

    print(f"evolved {len(result.history)} generations with a custom fitness")
    best = result.best
    print(f"best protection: {best.evaluation}")
    print("disclosure-risk components of the winner:")
    for name, value in best.evaluation.dr_components.items():
        print(f"  {name:>12}: {value:6.2f}")
    initial, final, percent = result.history.improvement("mean")
    print(f"population mean score: {initial:.2f} -> {final:.2f} ({percent:+.2f}%)")


if __name__ == "__main__":
    main()
