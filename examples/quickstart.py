"""Quickstart: protect a categorical file and post-optimize it with the GA.

Builds the paper's Adult census dataset, creates a small population of
protections with classic SDC methods, and runs the evolutionary
optimizer with the paper's Eq. 2 max-score fitness.  Takes well under a
minute on a laptop.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EvolutionaryProtector,
    MaxScore,
    Microaggregation,
    Pram,
    ProtectionEvaluator,
    RankSwapping,
    load_adult,
    protected_attributes,
)


def main() -> None:
    # 1. The original microdata file (synthetic stand-in for UCI Adult).
    original = load_adult()
    attributes = protected_attributes("adult")
    print(f"original: {original}")
    print(f"protected attributes: {', '.join(attributes)}")

    # 2. A small initial population: a few parameterizations of three
    #    classic protection methods.
    protections = []
    for seed, theta in enumerate((0.1, 0.2, 0.3)):
        protections.append(Pram(theta=theta).protect(original, attributes, seed=seed))
    for seed, p in enumerate((2, 5, 8), start=10):
        protections.append(RankSwapping(p=p).protect(original, attributes, seed=seed))
    for k in (3, 5, 8):
        protections.append(Microaggregation(k=k).protect(original, attributes))

    # 3. The paper's fitness: IL = mean(CTBIL, DBIL, EBIL), DR = mean(ID,
    #    DBRL, PRL, RSRL), score = max(IL, DR)  (Eq. 2).
    evaluator = ProtectionEvaluator(original, attributes, score_function=MaxScore())
    print("\ninitial population:")
    for masked in protections:
        print(f"  {evaluator.evaluate(masked)}  <- {masked.name.split(':', 1)[1]}")

    # 4. Evolve.
    engine = EvolutionaryProtector(evaluator, seed=7)
    result = engine.run(protections, stopping=150)

    # 5. Inspect.
    history = result.history
    print(f"\nafter {len(history)} generations:")
    for series in ("max", "mean", "min"):
        initial, final, percent = history.improvement(series)
        print(f"  {series:>4} score: {initial:6.2f} -> {final:6.2f}  ({percent:+.2f}% improvement)")
    best = result.best
    print(f"\nbest protection: {best.evaluation}")
    print(f"cells changed vs original: {original.cells_changed(best.dataset)}")


if __name__ == "__main__":
    main()
