"""Scenario: auditing SDC methods on the IL/DR plane.

Before choosing a protection method, a data steward wants to see where
each method family lands on the information-loss / disclosure-risk
trade-off for their file.  This example sweeps every method the library
ships on the Solar Flare dataset and prints a per-family audit table
plus an ASCII dispersion plot — the analysis behind the paper's initial
population figures.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro import (
    BottomCoding,
    GlobalRecoding,
    InvariantPram,
    LocalSuppression,
    MaxScore,
    Microaggregation,
    Pram,
    ProtectionEvaluator,
    RankSwapping,
    TopCoding,
    load_flare,
    protected_attributes,
)
from repro.experiments.reporting import ascii_scatter, render_grid
from repro.utils.tables import format_table

SWEEPS = [
    ("microaggregation", [Microaggregation(k=k) for k in (2, 4, 6, 8)]),
    ("rank swapping", [RankSwapping(p=p) for p in (2, 5, 8, 11)]),
    ("PRAM", [Pram(theta=t) for t in (0.1, 0.2, 0.3, 0.4)]),
    ("invariant PRAM", [InvariantPram(theta=t) for t in (0.1, 0.2, 0.3, 0.4)]),
    ("top coding", [TopCoding(fraction=f) for f in (0.1, 0.2, 0.3)]),
    ("bottom coding", [BottomCoding(fraction=f) for f in (0.1, 0.2, 0.3)]),
    ("global recoding", [GlobalRecoding(level=level) for level in (1, 2, 3)]),
    ("local suppression", [LocalSuppression(fraction=f) for f in (0.05, 0.15, 0.3)]),
]

MARKERS = "mrpiItbgs"


def main() -> None:
    original = load_flare()
    attributes = protected_attributes("flare")
    evaluator = ProtectionEvaluator(original, attributes, score_function=MaxScore())

    rows = []
    grid = None
    for marker, (family, methods) in zip(MARKERS, SWEEPS):
        points = []
        for seed, method in enumerate(methods):
            masked = method.protect(original, attributes, seed=seed)
            evaluation = evaluator.evaluate(masked)
            points.append((evaluation.information_loss, evaluation.disclosure_risk))
            rows.append(
                [
                    family,
                    method.describe(),
                    evaluation.information_loss,
                    evaluation.disclosure_risk,
                    evaluation.score,
                ]
            )
        grid = ascii_scatter(points, marker, grid=grid)

    print(format_table(["family", "configuration", "IL", "DR", "max score"], rows,
                       title="Solar Flare: method audit (lower score is better)"))
    legend = ", ".join(f"{marker}={family}" for marker, (family, _) in zip(MARKERS, SWEEPS))
    print()
    print(render_grid(grid, f"IL/DR plane ({legend})"))

    best = min(rows, key=lambda row: row[4])
    print(f"\nbest single configuration: {best[1]} ({best[0]}) with score {best[4]:.2f}")
    print("the GA's job is to beat this by recombining the whole population.")


if __name__ == "__main__":
    main()
