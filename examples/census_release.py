"""Scenario: preparing a census extract for public release.

A statistical office wants to publish the Adult census extract.  Policy
requires a *balanced* release: disclosure risk must come down without
destroying the contingency structure analysts rely on.  This example

1. builds the paper's full initial population for Adult (86 protections
   across six method families),
2. compares the Eq. 1 mean score and Eq. 2 max score as release criteria
   (the paper's experiments 1 vs 2),
3. evolves under the max score and exports the chosen file to CSV.

Run:  python examples/census_release.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    EvolutionaryProtector,
    MaxScore,
    MeanScore,
    ProtectionEvaluator,
    load_adult,
    protected_attributes,
    write_csv,
)
from repro.experiments import build_initial_population, dispersion_data, render_dispersion


def main() -> None:
    original = load_adult()
    attributes = protected_attributes("adult")

    print("building the paper's initial population for Adult (86 protections)...")
    protections = build_initial_population(original, dataset_name="adult", seed=0)
    print(f"  built {len(protections)} protected candidates")

    # Score the candidates under both release criteria.
    mean_evaluator = ProtectionEvaluator(original, attributes, score_function=MeanScore())
    max_evaluator = ProtectionEvaluator(original, attributes, score_function=MaxScore())
    scored = [(masked, max_evaluator.evaluate(masked)) for masked in protections]

    best_by_mean = min(scored, key=lambda pair: mean_evaluator.rescore(pair[1]).score)
    best_by_max = min(scored, key=lambda pair: pair[1].score)
    print("\nbest off-the-shelf protection per criterion:")
    print(f"  mean score (Eq. 1): {best_by_mean[1]}  |IL-DR| = {best_by_mean[1].imbalance():.2f}")
    print(f"  max score  (Eq. 2): {best_by_max[1]}  |IL-DR| = {best_by_max[1].imbalance():.2f}")

    # Evolve under the balanced criterion.
    print("\nevolving under the max score (Eq. 2)...")
    engine = EvolutionaryProtector(max_evaluator, seed=11)
    result = engine.run([pair[0] for pair in scored], stopping=200)
    print(render_dispersion(dispersion_data(result), "Adult: initial (o) vs final (x) population"))

    best = result.best
    print(f"\nrelease candidate: {best.evaluation}")

    # Export the chosen file exactly as an agency would.
    out_path = Path(tempfile.gettempdir()) / "adult_protected.csv"
    write_csv(best.dataset, out_path)
    print(f"wrote release file: {out_path}")


if __name__ == "__main__":
    main()
