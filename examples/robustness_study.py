"""Scenario: how much does the GA depend on its best starting protections?

The paper's §3.3 asks whether the optimizer merely *selects* the best
protection it was handed or genuinely *constructs* good protections.
This example reruns the Flare experiment with the best 5% and 10% of the
initial population removed and compares the final minimum scores with
the full-population run — the paper found gaps of only ~1 score point.

Run:  python examples/robustness_study.py           (quick, ~2-3 min)
      REPRO_FULL=1 python examples/robustness_study.py   (longer runs)
"""

from __future__ import annotations

from repro.experiments import (
    compare_robustness,
    default_generations,
    render_evolution,
    render_improvements,
)


def main() -> None:
    generations = default_generations(200)
    for fraction in (0.05, 0.10):
        print(f"\n=== dropping the best {fraction:.0%} of initial protections ===")
        full, truncated, comparison = compare_robustness(fraction, generations=generations)
        print(f"dropped {len(truncated.dropped)} elite protections before evolving")
        print(render_improvements(truncated.history, f"truncated run ({fraction:.0%} removed)"))
        print()
        print(render_evolution(truncated.history, "score evolution (truncated run)", max_rows=10))
        print(
            f"\nfinal min score: full population {comparison.full_min_score:.2f} vs "
            f"truncated {comparison.truncated_min_score:.2f} "
            f"(gap {comparison.gap:+.2f} points; paper saw ~1 point)"
        )


if __name__ == "__main__":
    main()
