"""A4 — Pareto-front extension benchmark (beyond the paper).

The paper scalarizes (IL, DR); its conclusions point at other
aggregations as future work.  This bench runs the Pareto multi-objective
engine on the Flare population and reports the final front, comparing
its knee point against the best individual found by the paper's Eq. 2
scalarization on the same budget.
"""

from __future__ import annotations

from conftest import bench_generations, emit
from repro.core.pareto import ParetoEvolutionaryProtector
from repro.datasets import load_flare, protected_attributes
from repro.experiments import build_initial_population
from repro.metrics import MaxScore, ProtectionEvaluator
from repro.utils.tables import format_table


def _run_pareto(generations: int):
    original = load_flare()
    attributes = protected_attributes("flare")
    evaluator = ProtectionEvaluator(original, attributes)
    engine = ParetoEvolutionaryProtector(evaluator, seed=42)
    protections = build_initial_population(original, dataset_name="flare", seed=0)
    return engine.run(protections, generations=generations), evaluator, protections


def test_pareto_front_extension(benchmark):
    generations = bench_generations(250)
    result, evaluator, protections = benchmark.pedantic(
        _run_pareto, args=(generations,), rounds=1, iterations=1
    )
    front = result.front_objectives()
    emit(
        "A4 — final Pareto front (flare)",
        format_table(["IL", "DR", "max(IL,DR)"], [[il, dr, max(il, dr)] for il, dr in front]),
    )

    # The front is a valid trade-off curve: sorted by IL, DR non-increasing.
    drs = [dr for __, dr in front]
    assert all(b <= a + 1e-9 for a, b in zip(drs, drs[1:]))

    # The knee (min max(IL, DR)) should not be worse than the best *initial*
    # protection under the Eq. 2 criterion: Pareto search keeps at least the
    # scalar optimum's quality in its front.
    knee = min(max(il, dr) for il, dr in front)
    best_initial = min(evaluator.evaluate(p).score for p in protections)
    emit(
        "A4 — knee vs best initial Eq. 2 score",
        f"knee max(IL,DR): {knee:.2f}\nbest initial Eq. 2 score: {best_initial:.2f}",
    )
    assert knee <= best_initial + 1e-6
