"""E2-timing — paper §3.2 in-text timing numbers.

The paper reports, averaged over its runs: 120.34 s per mutation
generation vs 242.48 s per crossover generation, with all but ~0.02 s
spent in the fitness function.  Absolute numbers depend entirely on the
hardware and the measure implementations (ours are vectorized and
tuple-compressed), but two *shape* claims are checkable:

* fitness evaluation dominates the generation wall time;
* a crossover generation costs about twice a mutation generation
  (4 fitness evaluations vs 2 in the paper's accounting; 2 vs 1 here
  since surviving parents are cached).
"""

from __future__ import annotations

from conftest import emit
from repro.core import EvolutionaryProtector
from repro.datasets import load_flare, protected_attributes
from repro.experiments import build_initial_population, render_timing
from repro.metrics import ProtectionEvaluator


def _run_timed(operator_probability: float, generations: int):
    original = load_flare()
    attributes = protected_attributes("flare")
    evaluator = ProtectionEvaluator(original, attributes, cache_size=0)
    engine = EvolutionaryProtector(
        evaluator, mutation_probability=operator_probability, seed=7
    )
    protections = build_initial_population(original, dataset_name="flare", seed=0)
    return engine.run(protections, stopping=generations)


def test_timing_fitness_dominates_generation(benchmark):
    result = benchmark.pedantic(_run_timed, args=(0.5, 120), rounds=1, iterations=1)
    emit(
        "E2-timing — per-generation cost split (paper §3.2: fitness dominates; "
        "crossover ~2x mutation)",
        render_timing(result.history, "flare, Eq. 2 fitness, no evaluation cache"),
    )
    timing = result.history.operator_timing()

    for operator, stats in timing.items():
        assert stats["fitness_seconds"] > stats["other_seconds"], (
            f"{operator}: fitness should dominate, got {stats}"
        )
    if "mutation" in timing and "crossover" in timing:
        ratio = timing["crossover"]["fitness_seconds"] / timing["mutation"]["fitness_seconds"]
        emit("E2-timing — crossover/mutation fitness-cost ratio", f"{ratio:.2f} (paper: ~2.0)")
        assert 1.2 <= ratio <= 4.0
