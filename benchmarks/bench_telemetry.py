"""Telemetry overhead benchmark — the pure-observer cost ceiling.

The observability layer's standing claim: telemetry *on* (registry
recording, events counting, instrumented hot paths) costs less than the
run-to-run noise floor of the evaluation pipeline.  This bench runs the
same fresh-population ``evaluate_many`` workload in alternating A/B
legs — telemetry disabled, telemetry enabled — and asserts on medians:

* scores are byte-identical between the states (the determinism
  contract, cheap to re-check here);
* the enabled median is within ``OVERHEAD_CEILING`` of the disabled
  median — and so is the *traced* median, a third leg that runs the
  same workload inside an active trace scope so ``repro.eval.batch``
  spans actually record (a scope-less leg would measure the no-op
  fast path and prove nothing).

Alternating legs (ABAB...) instead of two blocks keeps thermal drift
and cache warmup from loading one side of the comparison.  Sizes follow
``bench_evaluation.py``: ``REPRO_BENCH_EVAL_SIZES=120`` gives the CI
smoke run, where only toy sizes run but the ceiling is still asserted.
"""

from __future__ import annotations

import os
import statistics
import time

from conftest import emit, record_result

from repro import obs
from repro.data import CategoricalDataset
from repro.obs import trace as obs_trace
from repro.datasets import load_flare, protected_attributes
from repro.experiments.population_builder import build_initial_population
from repro.linkage.compressed import clear_pair_memo
from repro.metrics import ProtectionEvaluator

#: Enabled-telemetry median must stay within this factor of disabled.
OVERHEAD_CEILING = 1.03
#: Alternating legs per state; medians are robust to one noisy leg.
LEGS = 5


def _sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_EVAL_SIZES", "")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    return [300, 600]


def _population(size: int) -> tuple[CategoricalDataset, list[CategoricalDataset]]:
    full = load_flare()
    original = CategoricalDataset(full.codes[:size], full.schema,
                                  name=f"flare-{size}")
    return original, build_initial_population(original, dataset_name="flare", seed=0)


def _timed_leg(original, population, enabled: bool, traced: bool = False):
    if enabled:
        obs.enable()
    else:
        obs.disable()
    obs.get_registry().reset()
    clear_pair_memo()
    evaluator = ProtectionEvaluator(original, protected_attributes("flare"))
    scope = None
    if traced:
        obs_trace.enable_tracing(sample_rate=1.0)
        scope = obs_trace.activate(obs_trace.new_trace_id())
    try:
        start = time.perf_counter()
        scores = evaluator.evaluate_many(population)
        seconds = time.perf_counter() - start
    finally:
        if scope is not None:
            spans = obs_trace.deactivate(scope)
            obs_trace.disable_tracing()
            # The leg must have measured a live tracer, not the no-op path.
            assert spans, "traced leg recorded no spans"
        else:
            obs_trace.disable_tracing()
    return seconds, scores


def test_bench_telemetry_overhead_below_ceiling():
    rows = []
    worst = 0.0
    try:
        for size in _sizes():
            original, population = _population(size)
            _timed_leg(original, population, enabled=False)  # warmup, untimed
            off, on, traced = [], [], []
            baseline_scores = None
            for _ in range(LEGS):
                seconds, scores = _timed_leg(original, population, enabled=False)
                off.append(seconds)
                if baseline_scores is None:
                    baseline_scores = scores
                assert scores == baseline_scores
                seconds, scores = _timed_leg(original, population, enabled=True)
                on.append(seconds)
                # Telemetry is a pure observer: identical scores either way.
                assert scores == baseline_scores
                seconds, scores = _timed_leg(
                    original, population, enabled=True, traced=True
                )
                traced.append(seconds)
                assert scores == baseline_scores
            ratio = statistics.median(on) / statistics.median(off)
            traced_ratio = statistics.median(traced) / statistics.median(off)
            record_result("telemetry", f"off-n{size}", statistics.median(off))
            record_result("telemetry", f"on-n{size}", statistics.median(on),
                          ratio=ratio)
            record_result("telemetry", f"traced-n{size}",
                          statistics.median(traced), ratio=traced_ratio)
            worst = max(worst, ratio, traced_ratio)
            rows.append(
                f"n={size:5d}  pop={len(population):4d}  "
                f"off={statistics.median(off) * 1000:7.1f}ms  "
                f"on={statistics.median(on) * 1000:7.1f}ms  "
                f"traced={statistics.median(traced) * 1000:7.1f}ms  "
                f"overhead={100 * (ratio - 1):+5.1f}%  "
                f"traced={100 * (traced_ratio - 1):+5.1f}%"
            )
    finally:
        obs.disable()
        obs_trace.disable_tracing()
        obs.get_registry().reset()

    emit("telemetry overhead: evaluate_many with registry off / on / traced",
         "\n".join(rows))
    assert worst <= OVERHEAD_CEILING, (
        f"telemetry overhead {100 * (worst - 1):.1f}% exceeds the "
        f"{100 * (OVERHEAD_CEILING - 1):.0f}% ceiling"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    test_bench_telemetry_overhead_below_ceiling()
