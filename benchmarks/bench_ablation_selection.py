"""A2 — selection-strategy ablation (beyond the paper).

The paper's Eq. 3 is ambiguous (see DESIGN.md): read literally it
prefers *worse* individuals, while the text describes preferring better
ones.  This ablation runs all four selection strategies on the same
population and seed and reports the mean-score improvement of each, so
the ambiguity's practical cost is measurable.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit
from repro.core import EvolutionaryProtector
from repro.core.selection import STRATEGIES
from repro.datasets import load_flare, protected_attributes
from repro.experiments import build_initial_population
from repro.metrics import ProtectionEvaluator
from repro.utils.tables import format_table

_RESULTS: dict[str, dict[str, float]] = {}


def _run(strategy: str):
    original = load_flare()
    attributes = protected_attributes("flare")
    evaluator = ProtectionEvaluator(original, attributes)
    engine = EvolutionaryProtector(evaluator, selection_strategy=strategy, seed=42)
    protections = build_initial_population(original, dataset_name="flare", seed=0)
    return engine.run(protections, stopping=bench_generations(250))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_selection_strategy(benchmark, strategy):
    result = benchmark.pedantic(_run, args=(strategy,), rounds=1, iterations=1)
    history = result.history
    __, final_mean, mean_improvement = history.improvement("mean")
    __, final_max, max_improvement = history.improvement("max")
    _RESULTS[strategy] = {
        "final_mean": final_mean,
        "mean_improvement": mean_improvement,
        "final_max": final_max,
        "max_improvement": max_improvement,
        "acceptance": history.acceptance_rate(),
    }
    assert mean_improvement >= 0.0

    if len(_RESULTS) == len(STRATEGIES):
        rows = [
            [name, r["final_mean"], r["mean_improvement"], r["final_max"],
             r["max_improvement"], r["acceptance"]]
            for name, r in _RESULTS.items()
        ]
        emit(
            "A2 — selection-strategy ablation (flare, Eq. 2)",
            format_table(
                ["strategy", "final mean", "mean improv %", "final max", "max improv %", "accept rate"],
                rows,
            ),
        )
