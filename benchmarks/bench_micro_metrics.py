"""M1 — measure micro-benchmarks.

Fitness evaluation is the paper's acknowledged bottleneck; these benches
time every IL and DR measure individually, plus the full evaluator, and
the compressed-vs-reference linkage speedup that makes the reproduction
laptop-fast.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_adult, protected_attributes
from repro.linkage import (
    distance_based_record_linkage,
    probabilistic_record_linkage,
    rank_swapping_record_linkage,
)
from repro.linkage.compressed import CompressedPair
from repro.methods import Pram
from repro.metrics import (
    ContingencyTableLoss,
    DistanceBasedLoss,
    DistanceLinkageRisk,
    EntropyBasedLoss,
    IntervalDisclosure,
    ProbabilisticLinkageRisk,
    ProtectionEvaluator,
    RankSwappingLinkageRisk,
)

ORIGINAL = load_adult()
ATTRS = protected_attributes("adult")
MASKED = Pram(theta=0.3).protect(ORIGINAL, ATTRS, seed=1)

IL_MEASURES = [ContingencyTableLoss, DistanceBasedLoss, EntropyBasedLoss]
DR_MEASURES = [IntervalDisclosure, DistanceLinkageRisk, ProbabilisticLinkageRisk, RankSwappingLinkageRisk]


@pytest.mark.parametrize("measure_cls", IL_MEASURES + DR_MEASURES, ids=lambda c: c.measure_name)
def test_measure_throughput(benchmark, measure_cls):
    measure = measure_cls(ORIGINAL, ATTRS)
    value = benchmark(measure.compute, MASKED)
    assert 0.0 <= value <= 100.0


def test_full_evaluation_throughput(benchmark):
    evaluator = ProtectionEvaluator(ORIGINAL, ATTRS, cache_size=0)
    score = benchmark(evaluator.evaluate, MASKED)
    assert 0.0 <= score.score <= 100.0


def test_cached_evaluation_throughput(benchmark):
    evaluator = ProtectionEvaluator(ORIGINAL, ATTRS)
    evaluator.evaluate(MASKED)  # warm the cache
    score = benchmark(evaluator.evaluate, MASKED)
    assert evaluator.cache_hits > 0
    assert 0.0 <= score.score <= 100.0


@pytest.mark.parametrize(
    "path,fn",
    [
        ("reference_n2", lambda: distance_based_record_linkage(ORIGINAL, MASKED, ATTRS)),
        ("compressed", lambda: CompressedPair(ORIGINAL, MASKED, ATTRS).distance_linkage()),
    ],
)
def test_dbrl_reference_vs_compressed(benchmark, path, fn):
    value = benchmark(fn)
    assert 0.0 <= value <= 100.0


@pytest.mark.parametrize(
    "path,fn",
    [
        ("reference_n2", lambda: probabilistic_record_linkage(ORIGINAL, MASKED, ATTRS)),
        ("compressed", lambda: CompressedPair(ORIGINAL, MASKED, ATTRS).probabilistic_linkage()),
    ],
)
def test_prl_reference_vs_compressed(benchmark, path, fn):
    value = benchmark(fn)
    assert 0.0 <= value <= 100.0


@pytest.mark.parametrize(
    "path,fn",
    [
        ("reference_n2", lambda: rank_swapping_record_linkage(ORIGINAL, MASKED, ATTRS)),
        ("compressed", lambda: CompressedPair(ORIGINAL, MASKED, ATTRS).rank_linkage()),
    ],
)
def test_rsrl_reference_vs_compressed(benchmark, path, fn):
    value = benchmark(fn)
    assert 0.0 <= value <= 100.0
