"""Job-store microbenchmark — file directory vs sqlite database at 1k jobs.

The tentpole claim of the sqlite backend is that the hot fleet
operations stop scaling with the size of the job table: a queue poll,
a capacity batch claim and a stale-claim recovery pass are indexed
queries instead of full directory scans.  This bench measures exactly
those paths on both backends over the same 1000-job workload:

* ``submit``      — 1000 idempotent submissions into an empty store;
* ``poll``        — 20 ``queued()`` polls over the full table (the
                    steady-state worker tick);
* ``claim+drain`` — ``claim_batch(limit=25)`` pulls until the queue is
                    empty (40 batch claims);
* ``recover``     — one ``recover_stale_claims`` pass that requeues all
                    1000 claimed jobs (the crashed-fleet repair).

The assertion pins the headline: the sqlite store's claim+recover path
must beat the file store's.  Absolute numbers go to the bench log for
the PR record.
"""

from __future__ import annotations

import os
import time

from conftest import emit, record_result

from repro.service import JobStore, ProtectionJob, ShardedJobStore, SqliteJobStore

#: Override with REPRO_BENCH_STORE_JOBS (CI smoke runs use a toy size).
N_JOBS = int(os.environ.get("REPRO_BENCH_STORE_JOBS", "1000"))
POLLS = 20
BATCH = 25


def _jobs(n: int = N_JOBS) -> list[ProtectionJob]:
    return [ProtectionJob(dataset="adult", generations=1, seed=seed)
            for seed in range(n)]


def _bench_backend(store, jobs) -> dict[str, float]:
    timings: dict[str, float] = {}

    start = time.perf_counter()
    for job in jobs:
        store.submit(job)
    timings["submit"] = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(POLLS):
        queue = store.queued()
    timings["poll"] = time.perf_counter() - start
    assert len(queue) == len(jobs)

    start = time.perf_counter()
    claimed = 0
    while True:
        won = store.claim_batch(owner="bench-worker", limit=BATCH)
        if not won:
            break
        claimed += len(won)
    timings["claim+drain"] = time.perf_counter() - start
    assert claimed == len(jobs)

    # Every claim is freshly made, so max_age_seconds=0 makes the whole
    # fleet look silent: one recovery pass requeues all 1000 jobs.
    start = time.perf_counter()
    recovered = store.recover_stale_claims(max_age_seconds=0.0)
    timings["recover"] = time.perf_counter() - start
    assert len(recovered) == len(jobs)

    return timings


def test_bench_store_sqlite_beats_file_scan(tmp_path):
    jobs = _jobs()
    file_times = _bench_backend(JobStore(tmp_path / "file-store"), jobs)
    sqlite_times = _bench_backend(
        SqliteJobStore(tmp_path / "sql-store" / "jobs.sqlite"), jobs
    )

    rows = [
        f"{'operation':<14} {'file':>10} {'sqlite':>10} {'speedup':>9}",
    ]
    for op in ("submit", "poll", "claim+drain", "recover"):
        ratio = file_times[op] / sqlite_times[op] if sqlite_times[op] else float("inf")
        rows.append(f"{op:<14} {file_times[op]:>9.3f}s {sqlite_times[op]:>9.3f}s "
                    f"{ratio:>8.1f}x")
        record_result("store", f"file-{op}", file_times[op])
        record_result("store", f"sqlite-{op}", sqlite_times[op],
                      ratio=min(ratio, 1e9))
    emit(
        f"store microbenchmark — {N_JOBS} jobs, {POLLS} polls, "
        f"claim batches of {BATCH}",
        "\n".join(rows),
    )

    # The headline: the indexed claim+recover path must beat the
    # full-scan path.  (Submit is not asserted — a transactional
    # database write may legitimately cost more than one file rename.)
    file_hot = file_times["claim+drain"] + file_times["recover"]
    sqlite_hot = sqlite_times["claim+drain"] + sqlite_times["recover"]
    assert sqlite_hot < file_hot, (
        f"sqlite claim+recover ({sqlite_hot:.3f}s) should beat "
        f"the file store's full scans ({file_hot:.3f}s)"
    )


def _drain(store, n: int, *, steal: bool) -> float:
    """Seconds to claim the whole queue in batches of ``BATCH``."""
    claim = store.steal_batch if steal else store.claim_batch
    start = time.perf_counter()
    claimed = 0
    while True:
        won = claim(owner="bench-worker", limit=BATCH)
        if not won:
            break
        claimed += len(won)
    elapsed = time.perf_counter() - start
    assert claimed == n
    return elapsed


def test_bench_sharded_claim_drain_beats_single_file_store(tmp_path):
    """The sharding smoke leg: a 2-shard sqlite fleet drained through the
    worker fast path (``steal_batch``: one-transaction home drains, then
    backlog steals) must beat a single file store's batch claims over
    the same jobs — sharding may not cost the hot path what it buys in
    capacity."""
    jobs = _jobs()

    file_store = JobStore(tmp_path / "file-store")
    for job in jobs:
        file_store.submit(job)
    file_drain = _drain(file_store, len(jobs), steal=False)

    sharded = ShardedJobStore(
        [SqliteJobStore(tmp_path / "shard-a.sqlite"),
         SqliteJobStore(tmp_path / "shard-b.sqlite")],
        names=["a", "b"],
        root=tmp_path / "spool",
    )
    for job in jobs:
        sharded.submit(job)
    shard_drain = _drain(sharded, len(jobs), steal=True)

    ratio = file_drain / shard_drain if shard_drain else float("inf")
    record_result("store-sharded", "file-claim-drain", file_drain)
    record_result("store-sharded", "shard-steal-drain", shard_drain,
                  ratio=min(ratio, 1e9))
    emit(
        f"sharded claim+drain — {len(jobs)} jobs, batches of {BATCH}, "
        "2 sqlite shards vs one file store",
        f"{'file claim_batch':<22} {file_drain:>9.3f}s\n"
        f"{'2-shard steal_batch':<22} {shard_drain:>9.3f}s\n"
        f"{'speedup':<22} {ratio:>9.1f}x",
    )
    assert shard_drain < file_drain, (
        f"2-shard steal_batch drain ({shard_drain:.3f}s) should beat the "
        f"single file store's claim_batch drain ({file_drain:.3f}s)"
    )
