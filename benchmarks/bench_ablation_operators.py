"""A3 — operator-rate ablation (beyond the paper).

The paper fixes mutation/crossover at 0.5/0.5 "heuristically".  This
ablation sweeps the mutation probability from 0 (crossover only) to 1
(mutation only) and reports the mean-score improvement, showing what the
heuristic choice is worth.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit
from repro.core import EvolutionaryProtector
from repro.datasets import load_flare, protected_attributes
from repro.experiments import build_initial_population
from repro.metrics import ProtectionEvaluator
from repro.utils.tables import format_table

RATES = (0.0, 0.25, 0.5, 0.75, 1.0)
_RESULTS: dict[float, dict[str, float]] = {}


def _run(mutation_probability: float):
    original = load_flare()
    attributes = protected_attributes("flare")
    evaluator = ProtectionEvaluator(original, attributes)
    engine = EvolutionaryProtector(
        evaluator, mutation_probability=mutation_probability, seed=42
    )
    protections = build_initial_population(original, dataset_name="flare", seed=0)
    return engine.run(protections, stopping=bench_generations(250))


@pytest.mark.parametrize("rate", RATES)
def test_ablation_operator_rates(benchmark, rate):
    result = benchmark.pedantic(_run, args=(rate,), rounds=1, iterations=1)
    history = result.history
    __, final_mean, mean_improvement = history.improvement("mean")
    _RESULTS[rate] = {
        "final_mean": final_mean,
        "mean_improvement": mean_improvement,
        "acceptance": history.acceptance_rate(),
    }
    assert mean_improvement >= 0.0

    if len(_RESULTS) == len(RATES):
        rows = [
            [f"{rate:.2f}", r["final_mean"], r["mean_improvement"], r["acceptance"]]
            for rate, r in sorted(_RESULTS.items())
        ]
        emit(
            "A3 — mutation-probability ablation (flare, Eq. 2; paper fixes 0.5)",
            format_table(
                ["P(mutation)", "final mean", "mean improv %", "accept rate"], rows
            ),
        )
        # Crossover-only should beat mutation-only on population-level
        # improvement: single-cell mutations move scores far more slowly
        # than recombining whole segments of good protections.
        assert _RESULTS[0.0]["mean_improvement"] >= _RESULTS[1.0]["mean_improvement"] - 2.0
