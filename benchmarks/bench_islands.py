"""Island-model benchmark — the fleet accelerating one search.

The island driver's tentpole claim: splitting one seeded search into
``P`` migrant-exchanging islands and running them on ``P`` workers
reaches the serial run's final best score in under half the wall-clock
time.  The mechanism is best-of-``P`` diversity compounded by elite
migration — each island explores its own ``SeedSequence``-derived
stream, and every ``M`` generations the top-``k`` elites propagate
around the ring — so the group's running best crosses the serial
run's *final* score while the serial run is still mid-flight.

Both legs run through the real service surface (a file store and
``repro worker`` subprocesses), not an in-process shortcut:

* ``serial``  — one ``islands=1`` job on one worker; its result wall
  time is the baseline, its final best score is the target ``S``;
* ``islands`` — the same base job split ``--islands P`` on ``W``
  workers; the timed quantity is *time-to-equal-best*: the first
  moment any island's durable checkpoint (written at every exchange
  round) or finished result reaches ``S``.

The speedup floor (``>= 2x`` with the default P=4 on 4 workers) and
the front check (the merged Pareto front must match-or-dominate the
serial run's best point) are asserted only at full size — CI smoke
runs set ``REPRO_BENCH_ISLANDS_GENERATIONS`` to a toy budget and only
check that the group completes and merges.  The wall-clock floor
additionally needs the hardware the headline names: on a box with
fewer cores than ``W`` the leg measures contention (P populations
time-slicing one core), not the driver, so the floor is reported but
not asserted there.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import emit, record_result

from repro.service import JobStore, ProtectionJob, plan_island_jobs
from repro.service.islands import front_dominates_or_matches

#: Islands (and the worker count that matches the headline claim).
ISLANDS = int(os.environ.get("REPRO_BENCH_ISLANDS", "4"))
WORKERS = int(os.environ.get("REPRO_BENCH_ISLANDS_WORKERS", "4"))
GENERATIONS = int(os.environ.get("REPRO_BENCH_ISLANDS_GENERATIONS", "60"))
MIGRATE_EVERY = int(os.environ.get("REPRO_BENCH_ISLANDS_MIGRATE_EVERY", "10"))
MIGRANTS = int(os.environ.get("REPRO_BENCH_ISLANDS_MIGRANTS", "3"))
#: Wall-clock floor: serial time / island time-to-equal-best.
SPEEDUP_FLOOR = 2.0
#: Budgets below this only check correctness (CI smoke at toy scale).
FLOOR_MIN_GENERATIONS = 40
#: Hard cap on either leg before the bench gives up and fails.
LEG_TIMEOUT = 1200.0


def _base_job() -> ProtectionJob:
    return ProtectionJob(dataset="flare", score="max",
                         generations=GENERATIONS, seed=42)


def _spawn_workers(state_dir: Path, count: int) -> list[subprocess.Popen]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.cli", "worker",
        "--state-dir", str(state_dir),
        # Stay alive through transient empty polls (peers holding every
        # claim mid-exchange), exit ~1s after the queue drains for good.
        "--poll-seconds", "0.2", "--idle-exit", "5",
    ]
    return [
        subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL,
                         stderr=subprocess.DEVNULL)
        for _ in range(count)
    ]


def _reap(workers: list[subprocess.Popen]) -> None:
    for proc in workers:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


def _checkpoint_best(store: JobStore, job_id: str) -> float:
    """Best score in the job's durable checkpoint, ``inf`` when absent."""
    payload = store.get_checkpoint(job_id)
    if not isinstance(payload, dict):
        return float("inf")
    scores = [
        individual.get("evaluation", {}).get("score")
        for individual in payload.get("individuals", ())
    ]
    numeric = [float(s) for s in scores if s is not None]
    return min(numeric) if numeric else float("inf")


def _await_completion(store: JobStore, job_ids: list[str],
                      target: float | None = None) -> float | None:
    """Poll until every job settles; return time-to-``target`` if hit.

    The clock starts when the first job leaves the queue (symmetric
    with the serial leg's ``wall_seconds``, which also excludes worker
    start-up), and the returned time is the first poll at which any
    job's checkpoint — or finished result — reached ``target``.
    """
    deadline = time.time() + LEG_TIMEOUT
    started_at: float | None = None
    time_to_target: float | None = None
    while True:
        if time.time() > deadline:
            raise AssertionError(f"bench leg exceeded {LEG_TIMEOUT:.0f}s")
        records = [store.get(job_id) for job_id in job_ids]
        running = [r for r in records if r.status in ("running", "completed",
                                                      "failed")]
        if started_at is None and running:
            started_at = time.time()
        if (target is not None and time_to_target is None
                and started_at is not None):
            best = float("inf")
            for record in records:
                if record.result is not None:
                    best = min(best, float(record.result.best_score))
                else:
                    best = min(best, _checkpoint_best(store, record.job_id))
            if best <= target + 1e-9:
                time_to_target = time.time() - started_at
        failed = [r.job_id for r in records if r.status == "failed"]
        assert not failed, f"bench jobs failed: {failed}"
        if all(r.status == "completed" for r in records):
            return time_to_target
        time.sleep(0.15)


def test_bench_islands_reach_serial_best_faster(tmp_path):
    base = _base_job()

    # -- serial leg: one job, one worker --------------------------------
    serial_dir = tmp_path / "serial"
    serial_store = JobStore(serial_dir)
    serial_record = serial_store.submit(
        base, extras={"checkpoint_every": MIGRATE_EVERY}
    )
    workers = _spawn_workers(serial_dir, 1)
    try:
        _await_completion(serial_store, [serial_record.job_id])
    finally:
        _reap(workers)
    serial_result = serial_store.get(serial_record.job_id).result
    serial_seconds = float(serial_result.wall_seconds)
    target = float(serial_result.best_score)

    # -- island leg: the same search split P ways on W workers ----------
    island_dir = tmp_path / "islands"
    island_store = JobStore(island_dir)
    group = plan_island_jobs(base, ISLANDS, migrate_every=MIGRATE_EVERY,
                             migrants=MIGRANTS, topology="ring")
    for job in group:
        island_store.submit(job, extras={"checkpoint_every": MIGRATE_EVERY})
    member_ids = [job.job_id for job in group[:-1]]
    merge_id = group[-1].job_id
    workers = _spawn_workers(island_dir, WORKERS)
    try:
        time_to_equal = _await_completion(
            island_store, member_ids + [merge_id], target=target
        )
    finally:
        _reap(workers)

    merge_result = island_store.get(merge_id).result
    island_info = merge_result.extras.get("island", {})
    front = [(float(p[0]), float(p[1]))
             for p in island_info.get("front", ())]
    assert front, "merge job produced no Pareto front"
    assert time_to_equal is not None, (
        f"islands never reached the serial best {target:.4f}; "
        f"group best {merge_result.best_score:.4f}"
    )

    speedup = serial_seconds / time_to_equal if time_to_equal else float("inf")
    record_result("islands", "serial", serial_seconds)
    record_result(
        "islands", f"islands-p{ISLANDS}-w{WORKERS}", time_to_equal,
        ratio=min(speedup, 1e9),
    )
    baseline_point = (float(serial_result.best_information_loss) + 1e-9,
                      float(serial_result.best_disclosure_risk) + 1e-9)
    dominated = front_dominates_or_matches(front, [baseline_point])
    emit(
        f"island-model search — {ISLANDS} islands on {WORKERS} workers, "
        f"{GENERATIONS} generations, exchange every {MIGRATE_EVERY}",
        f"{'serial wall':<26} {serial_seconds:>9.2f}s  (best {target:.4f})\n"
        f"{'islands time-to-equal':<26} {time_to_equal:>9.2f}s  "
        f"(group best {float(merge_result.best_score):.4f})\n"
        f"{'speedup':<26} {speedup:>9.1f}x\n"
        f"{'merged front':<26} {len(front):>9d} point(s), "
        f"{'dominates/matches' if dominated else 'does NOT cover'} "
        "the serial best",
    )
    if GENERATIONS >= FLOOR_MIN_GENERATIONS:
        assert dominated, (
            "the merged Pareto front neither matches nor dominates the "
            f"serial run's best point {baseline_point}: {front}"
        )
        if (os.cpu_count() or 1) >= WORKERS:
            assert speedup >= SPEEDUP_FLOOR, (
                f"islands reached the serial best in {time_to_equal:.2f}s vs "
                f"{serial_seconds:.2f}s serial — only {speedup:.1f}x; the "
                f"island driver's floor is {SPEEDUP_FLOOR}x"
            )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        test_bench_islands_reach_serial_best_faster(Path(scratch))
    print(json.dumps({"ok": True}))
