"""E1 — paper §3.1, Figures 1-8: mean-score fitness on all four datasets.

Regenerates, per dataset: the initial/final (IL, DR) dispersion cloud,
the max/mean/min score evolution series, and the in-text improvement
percentages, all under the Eq. 1 mean score.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit_experiment_reports
from repro.experiments import EXPERIMENT1_FIGURES, run_experiment1

DATASETS = ("adult", "housing", "german", "flare")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig_experiment1_mean_score(benchmark, dataset):
    outcome = benchmark.pedantic(
        run_experiment1,
        args=(dataset,),
        kwargs={"generations": bench_generations(), "seed": 42},
        rounds=1,
        iterations=1,
    )
    figures = EXPERIMENT1_FIGURES[dataset]
    emit_experiment_reports(
        f"E1 {dataset} (Eq. 1 mean score)",
        outcome,
        dispersion_figure=figures["dispersion"],
        evolution_figure=figures["evolution"],
    )

    history = outcome.history
    # Reproduction checks (shape, not absolute numbers): scores are
    # monotone non-increasing under elitism, and the mean improves.
    assert all(b <= a + 1e-9 for a, b in zip(history.mean_scores, history.mean_scores[1:]))
    __, __, mean_improvement = history.improvement("mean")
    assert mean_improvement >= 0.0
    __, __, min_improvement = history.improvement("min")
    assert min_improvement < 20.0  # the paper: min barely moves
