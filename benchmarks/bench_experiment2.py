"""E2 — paper §3.2, Figures 9-16: max-score fitness on all four datasets.

Regenerates the dispersion and evolution artifacts under the Eq. 2 max
score and checks the paper's balance claim: the final population's
(IL, DR) pairs are more balanced than the initial ones.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit_experiment_reports
from repro.experiments import EXPERIMENT2_FIGURES, dispersion_data, run_experiment2

DATASETS = ("adult", "housing", "german")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig_experiment2_max_score(benchmark, dataset):
    outcome = benchmark.pedantic(
        run_experiment2,
        args=(dataset,),
        kwargs={"generations": bench_generations(), "seed": 42},
        rounds=1,
        iterations=1,
    )
    _check_and_report(dataset, outcome)


def test_fig_experiment2_max_score_flare(benchmark, flare_max_full_run):
    # Flare's run is shared with the robustness benches (session fixture);
    # benchmark only the (cheap) report extraction to avoid rerunning it.
    outcome = flare_max_full_run
    benchmark.pedantic(lambda: dispersion_data(outcome.result), rounds=1, iterations=1)
    _check_and_report("flare", outcome)


def _check_and_report(dataset, outcome):
    figures = EXPERIMENT2_FIGURES[dataset]
    emit_experiment_reports(
        f"E2 {dataset} (Eq. 2 max score)",
        outcome,
        dispersion_figure=figures["dispersion"],
        evolution_figure=figures["evolution"],
    )

    history = outcome.history
    assert all(b <= a + 1e-9 for a, b in zip(history.max_scores, history.max_scores[1:]))
    __, __, mean_improvement = history.improvement("mean")
    assert mean_improvement >= 0.0

    # The paper's §3.2 claim: optimizing max(IL, DR) balances the clouds.
    data = dispersion_data(outcome.result)
    assert data.final_mean_imbalance() <= data.initial_mean_imbalance() + 1e-9
