"""E3 — paper §3.3, Figures 17-20: robustness to missing elite protections.

Reruns Flare under the Eq. 2 max score with the best 5% / 10% of the
initial population removed, and compares the final minimum score against
the shared full-population run — the paper reports gaps of 1.33 and 1.08
points.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit, emit_experiment_reports
from repro.experiments import EXPERIMENT3_FRACTIONS, run_experiment3


@pytest.mark.parametrize("fraction", sorted(EXPERIMENT3_FRACTIONS))
def test_fig_experiment3_robustness(benchmark, flare_max_full_run, fraction):
    outcome = benchmark.pedantic(
        run_experiment3,
        args=(fraction,),
        kwargs={"generations": bench_generations(), "seed": 42},
        rounds=1,
        iterations=1,
    )
    figures = EXPERIMENT3_FRACTIONS[fraction]
    emit_experiment_reports(
        f"E3 flare without best {fraction:.0%} (Eq. 2 max score)",
        outcome,
        dispersion_figure=figures["dispersion"],
        evolution_figure=figures["evolution"],
    )

    full_min = flare_max_full_run.history.min_scores[-1]
    truncated_min = outcome.history.min_scores[-1]
    gap = truncated_min - full_min
    emit(
        f"E3 robustness gap ({fraction:.0%} removed) — paper: 1.33 / 1.08 points",
        f"full-population final min score : {full_min:.2f}\n"
        f"truncated final min score       : {truncated_min:.2f}\n"
        f"gap                             : {gap:+.2f} points",
    )

    # The elites really were removed...
    assert len(outcome.dropped) == round(104 * fraction)
    truncated_start_min = outcome.history.min_scores[0]
    full_start_min = flare_max_full_run.history.min_scores[0]
    assert truncated_start_min >= full_start_min - 1e-9
    # ...and the GA recovers to within a few points of the full run
    # (the paper saw ~1; allow slack for the shorter bench budget).
    assert gap <= 6.0
