"""M1 — protection-method micro-benchmarks.

Times one protect() call per method family on the Adult dataset (1000
records, 3 protected attributes), the workload of the initial-population
builder.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_adult, protected_attributes
from repro.methods import (
    BottomCoding,
    GlobalRecoding,
    InvariantPram,
    LocalSuppression,
    Microaggregation,
    Pram,
    ProtectionPipeline,
    RankSwapping,
    TopCoding,
)

ORIGINAL = load_adult()
ATTRS = protected_attributes("adult")

METHODS = [
    ("microaggregation_k3", Microaggregation(k=3)),
    ("microaggregation_joint", Microaggregation(k=3, strategy="joint", sort_attributes=ATTRS)),
    ("rank_swapping_p5", RankSwapping(p=5)),
    ("pram_theta02", Pram(theta=0.2)),
    ("invariant_pram_theta02", InvariantPram(theta=0.2)),
    ("top_coding", TopCoding(fraction=0.2)),
    ("bottom_coding", BottomCoding(fraction=0.2)),
    ("global_recoding_l2", GlobalRecoding(level=2)),
    ("local_suppression", LocalSuppression(fraction=0.1)),
    ("pipeline_recode_pram", ProtectionPipeline([GlobalRecoding(level=1), Pram(theta=0.1)])),
]


@pytest.mark.parametrize("label,method", METHODS, ids=[m[0] for m in METHODS])
def test_method_throughput(benchmark, label, method):
    masked = benchmark(method.protect, ORIGINAL, ATTRS, 7)
    ORIGINAL.require_compatible(masked)
