"""A1 — score-function ablation (beyond the paper).

The paper compares Eq. 1 (mean) and Eq. 2 (max) qualitatively across
experiments 1 and 2; this ablation runs all four library score functions
on one dataset/seed and reports final mean score and final balance, so
the Eq. 1 vs Eq. 2 trade-off is visible in one table — plus where the
intermediate aggregations (weighted, power mean) land.
"""

from __future__ import annotations

import pytest

from conftest import bench_generations, emit
from repro.experiments import ExperimentConfig, dispersion_data, run_experiment
from repro.utils.tables import format_table

SCORES = ("mean", "max", "weighted", "power_mean")
_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("score", SCORES)
def test_ablation_score_function(benchmark, score):
    config = ExperimentConfig(
        dataset="flare",
        score=score,
        generations=bench_generations(250),
        seed=42,
    )
    outcome = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    history = outcome.history
    data = dispersion_data(outcome.result)
    __, final_mean, mean_improvement = history.improvement("mean")
    _RESULTS[score] = {
        "final_mean": final_mean,
        "mean_improvement": mean_improvement,
        "final_imbalance": data.final_mean_imbalance(),
        "initial_imbalance": data.initial_mean_imbalance(),
    }
    assert mean_improvement >= 0.0

    if len(_RESULTS) == len(SCORES):
        rows = [
            [name, r["final_mean"], r["mean_improvement"], r["initial_imbalance"], r["final_imbalance"]]
            for name, r in _RESULTS.items()
        ]
        emit(
            "A1 — score-function ablation (flare)",
            format_table(
                ["score fn", "final mean", "mean improv %", "init |IL-DR|", "final |IL-DR|"],
                rows,
            ),
        )
        # The paper's conclusion: the max score yields better-balanced
        # final populations than the mean score.
        assert _RESULTS["max"]["final_imbalance"] <= _RESULTS["mean"]["final_imbalance"] + 2.0
