"""Fitness-pipeline benchmark — scalar loop vs batch vs process fan-out.

The batch-first refactor's tentpole claim: evaluating a fresh (uncached)
population through ``ProtectionEvaluator.evaluate_many`` is several
times faster than the scalar ``evaluate`` loop, because the batch path
computes shared intermediates once (original-side linkage index, rank
tables, stacked code tensors) and pools the Fellegi–Sunter EM across
the whole batch.  This bench measures fresh-population throughput at
2–3 dataset sizes on three paths:

* ``serial``  — the scalar reference: ``[evaluator.evaluate(p) ...]``;
* ``batch``   — ``evaluate_many`` in-process (vectorized kernels);
* ``process`` — ``evaluate_many`` over a 2-worker process executor.

Every path must return byte-identical scores (asserted), and the batch
path must beat serial by ``>= 3x`` at the largest size (the acceptance
headline).  The process row is informational: on a single-core box the
pickling tax usually wins, which is exactly the thread-vs-process
guidance the README documents.

Sizes default to (300, 600, 1066) Flare records; set
``REPRO_BENCH_EVAL_SIZES=120`` (comma-separated) for the CI smoke run —
at toy sizes only the exactness assertions are enforced, not the
speedup floor.
"""

from __future__ import annotations

import os
import time

from conftest import emit, record_result

from repro.data import CategoricalDataset
from repro.datasets import load_flare, protected_attributes
from repro.experiments.population_builder import build_initial_population
from repro.linkage.compressed import clear_pair_memo
from repro.metrics import ProtectionEvaluator
from repro.service.backends import create_backend

#: The speedup floor asserted at the largest benched size.
SPEEDUP_FLOOR = 3.0
#: Sizes below this only check exactness (CI smoke at toy scale).
FLOOR_MIN_SIZE = 1000


def _sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_EVAL_SIZES", "")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    return [300, 600, 1066]


def _population(size: int) -> tuple[CategoricalDataset, list[CategoricalDataset]]:
    full = load_flare()
    original = CategoricalDataset(full.codes[:size], full.schema,
                                  name=f"flare-{size}")
    return original, build_initial_population(original, dataset_name="flare", seed=0)


def _fresh_evaluator(original: CategoricalDataset, executor=None) -> ProtectionEvaluator:
    return ProtectionEvaluator(original, protected_attributes("flare"),
                               executor=executor)


def test_bench_batch_evaluation_beats_serial():
    attrs_rows = []
    largest_speedup = 0.0
    largest_size = 0
    for size in _sizes():
        original, population = _population(size)

        # Each timed leg starts with a cold pair memo, or the serial leg
        # would pre-build the very pairs the batch leg is timed on.
        clear_pair_memo()
        evaluator = _fresh_evaluator(original)
        start = time.perf_counter()
        serial_scores = [evaluator.evaluate(p) for p in population]
        serial_s = time.perf_counter() - start

        clear_pair_memo()
        evaluator = _fresh_evaluator(original)
        start = time.perf_counter()
        batch_scores = evaluator.evaluate_many(population)
        batch_s = time.perf_counter() - start

        clear_pair_memo()
        evaluator = _fresh_evaluator(
            original, executor=create_backend("process", max_workers=2)
        )
        start = time.perf_counter()
        process_scores = evaluator.evaluate_many(population)
        process_s = time.perf_counter() - start

        # Whatever the path, the scores are byte-identical.
        assert batch_scores == serial_scores
        assert process_scores == serial_scores

        speedup = serial_s / batch_s if batch_s else float("inf")
        record_result("evaluation", f"serial-n{size}", serial_s)
        record_result("evaluation", f"batch-n{size}", batch_s, ratio=speedup)
        record_result("evaluation", f"process-n{size}", process_s)
        if size >= largest_size:
            largest_size, largest_speedup = size, speedup
        rate = len(population) / batch_s
        attrs_rows.append(
            f"n={size:5d}  pop={len(population):4d}  "
            f"serial={serial_s:6.2f}s  batch={batch_s:6.2f}s  "
            f"process={process_s:6.2f}s  batch-speedup={speedup:4.1f}x  "
            f"({rate:5.0f} cand/s batched)"
        )

    emit("fresh-population evaluation: serial vs batch vs process", "\n".join(attrs_rows))
    if largest_size >= FLOOR_MIN_SIZE:
        assert largest_speedup >= SPEEDUP_FLOOR, (
            f"batch path only {largest_speedup:.1f}x at n={largest_size}; "
            f"the refactor's floor is {SPEEDUP_FLOOR}x"
        )


if __name__ == "__main__":  # pragma: no cover - manual runs
    test_bench_batch_evaluation_beats_serial()
