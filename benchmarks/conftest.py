"""Shared benchmark plumbing.

Every bench regenerates one paper artifact (figure series or in-text
table) and prints the rows the paper plots, so the bench log doubles as
the reproduction record in EXPERIMENTS.md.  Generation budgets default
to laptop scale; set ``REPRO_FULL=1`` for 5x longer, closer-to-paper
runs, or ``REPRO_BENCH_GENERATIONS=<n>`` to pin them exactly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.runner import ExperimentResult, default_generations

#: Machine-readable rows collected by :func:`record_result`; written out
#: as one JSON array when the session was started with ``--json PATH``.
_RESULTS: list[dict] = []


def record_result(bench: str, leg: str, median_seconds: float,
                  ratio: float | None = None) -> None:
    """Record one bench leg for the ``--json`` artifact.

    Schema (one object per leg): ``{"bench": ..., "leg": ...,
    "median_seconds": ..., "ratio": ...}`` — ``ratio`` is the leg's
    headline comparison (speedup or overhead multiple) and is omitted
    for purely informational legs.  CI uploads the array so perf runs
    are diffable across commits without scraping the bench log.
    """
    entry: dict[str, object] = {
        "bench": bench,
        "leg": leg,
        "median_seconds": float(median_seconds),
    }
    if ratio is not None:
        entry["ratio"] = float(ratio)
    _RESULTS.append(entry)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--json", default="", metavar="PATH",
        help="write machine-readable bench results to PATH as a JSON array",
    )


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    path = session.config.getoption("--json", default="")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)
            handle.write("\n")


def bench_generations(fallback: int = 400) -> int:
    """Generation budget for the experiment benches."""
    override = os.environ.get("REPRO_BENCH_GENERATIONS", "")
    if override:
        return int(override)
    return default_generations(fallback)


def emit(title: str, body: str) -> None:
    """Print one labelled report block to the bench log."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def emit_experiment_reports(
    label: str,
    outcome: ExperimentResult,
    dispersion_figure: int | None = None,
    evolution_figure: int | None = None,
) -> None:
    """Print the dispersion + evolution + improvement reports of one run."""
    from repro.experiments import dispersion_data, render_dispersion, render_evolution, render_improvements

    if dispersion_figure is not None:
        emit(
            f"{label} — paper Figure {dispersion_figure} (dispersion)",
            render_dispersion(dispersion_data(outcome.result), ""),
        )
    if evolution_figure is not None:
        emit(
            f"{label} — paper Figure {evolution_figure} (score evolution)",
            render_evolution(outcome.history, "", max_rows=16),
        )
    emit(f"{label} — in-text improvements", render_improvements(outcome.history, ""))


@pytest.fixture(scope="session")
def flare_max_full_run():
    """One shared full-population Flare run under Eq. 2 (used by E2 + E3)."""
    from repro.experiments import run_experiment2

    return run_experiment2("flare", generations=bench_generations(), seed=42)
